//! From-scratch K-means clustering for the HARMONY workload characterizer.
//!
//! The paper (Section V) divides the cloud workload into *task classes*
//! with "standard K-means clustering". This crate provides the clustering
//! substrate:
//!
//! * [`Dataset`] — a dense row-major feature matrix.
//! * [`Standardizer`] and [`Log10Transform`] — feature scaling; task sizes
//!   span several orders of magnitude (Section III-D), so clustering is
//!   typically run in log space.
//! * [`KMeans`] — Lloyd's algorithm with k-means++ seeding, empty-cluster
//!   repair, and deterministic seeded runs.
//! * [`quality`] — inertia, silhouette scores, and the elbow rule used in
//!   Section IX-A ("the best value of k ... is selected as the one for
//!   which no significant benefit can be achieved by increasing k").
//!
//! # Examples
//!
//! ```
//! use harmony_kmeans::{Dataset, KMeans};
//!
//! // Two well-separated blobs.
//! let rows = vec![
//!     vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1],
//!     vec![5.0, 5.0], vec![5.1, 5.0], vec![5.0, 5.1],
//! ];
//! let data = Dataset::from_rows(rows)?;
//! let model = KMeans::new(2).seed(7).fit(&data)?;
//! assert_eq!(model.k(), 2);
//! // Points 0-2 share a label, points 3-5 share the other.
//! assert_eq!(model.assignments()[0], model.assignments()[1]);
//! assert_ne!(model.assignments()[0], model.assignments()[3]);
//! # Ok::<(), harmony_kmeans::KMeansError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod dataset;
mod error;
mod lloyd;
pub mod quality;
mod scale;

pub use dataset::Dataset;
pub use error::KMeansError;
pub use lloyd::{KMeans, KMeansModel};
pub use quality::{davies_bouldin, elbow_k, silhouette_score, ElbowReport};
pub use scale::{Log10Transform, Standardizer};

//! Error type for clustering operations.

use std::error::Error;
use std::fmt;

/// Errors returned by dataset construction and clustering.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KMeansError {
    /// The dataset has no rows or no columns.
    EmptyDataset,
    /// A row's length disagrees with the dataset dimension.
    RaggedRows {
        /// Index of the offending row.
        row: usize,
        /// Expected number of columns.
        expected: usize,
        /// Observed number of columns.
        got: usize,
    },
    /// A feature value is NaN or infinite.
    NonFiniteValue {
        /// Index of the offending row.
        row: usize,
    },
    /// `k` was zero.
    ZeroK,
    /// `k` exceeds the number of observations.
    TooFewPoints {
        /// Requested number of clusters.
        k: usize,
        /// Number of observations available.
        points: usize,
    },
    /// A point's dimension does not match the fitted model.
    DimensionMismatch {
        /// The model/dataset dimension.
        expected: usize,
        /// The supplied point's dimension.
        got: usize,
    },
}

impl fmt::Display for KMeansError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KMeansError::EmptyDataset => f.write_str("dataset must have at least one row and one column"),
            KMeansError::RaggedRows { row, expected, got } => {
                write!(f, "row {row} has {got} columns, expected {expected}")
            }
            KMeansError::NonFiniteValue { row } => {
                write!(f, "row {row} contains a NaN or infinite value")
            }
            KMeansError::ZeroK => f.write_str("number of clusters k must be positive"),
            KMeansError::TooFewPoints { k, points } => {
                write!(f, "cannot form {k} clusters from {points} points")
            }
            KMeansError::DimensionMismatch { expected, got } => {
                write!(f, "point has dimension {got}, model expects {expected}")
            }
        }
    }
}

impl Error for KMeansError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(KMeansError::ZeroK.to_string().contains("positive"));
        assert!(KMeansError::TooFewPoints { k: 5, points: 2 }.to_string().contains("5"));
        assert!(KMeansError::DimensionMismatch { expected: 2, got: 3 }.to_string().contains("3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<KMeansError>();
    }
}

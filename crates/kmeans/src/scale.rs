//! Feature scaling: z-score standardization and log-space transforms.
//!
//! Section III-D observes task sizes spanning **three orders of
//! magnitude**; raw Euclidean K-means would be dominated by the largest
//! tasks, so the classifier clusters in log space and/or standardized
//! space.

use serde::{Deserialize, Serialize};

use crate::{Dataset, KMeansError};

/// Per-column z-score standardizer: `x' = (x - mean) / std`.
///
/// Columns with zero variance pass through centered but unscaled.
///
/// # Examples
///
/// ```
/// use harmony_kmeans::{Dataset, Standardizer};
///
/// let data = Dataset::from_rows(vec![vec![0.0], vec![10.0]])?;
/// let scaler = Standardizer::fit(&data);
/// let scaled = scaler.transform(&data)?;
/// assert!((scaled.row(0)[0] + 1.0).abs() < 1e-12);
/// assert!((scaled.row(1)[0] - 1.0).abs() < 1e-12);
/// # Ok::<(), harmony_kmeans::KMeansError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Learns per-column means and population standard deviations.
    pub fn fit(data: &Dataset) -> Self {
        let n = data.len() as f64;
        let dim = data.dim();
        let mut means = vec![0.0; dim];
        for row in data.iter() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; dim];
        for row in data.iter() {
            for (j, &v) in row.iter().enumerate() {
                vars[j] += (v - means[j]) * (v - means[j]);
            }
        }
        let stds = vars.into_iter().map(|v| (v / n).sqrt()).collect();
        Standardizer { means, stds }
    }

    /// Learned per-column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Learned per-column standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Standardizes a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`KMeansError::DimensionMismatch`] if the dataset dimension
    /// differs from the fitted dimension.
    pub fn transform(&self, data: &Dataset) -> Result<Dataset, KMeansError> {
        if data.dim() != self.means.len() {
            return Err(KMeansError::DimensionMismatch {
                expected: self.means.len(),
                got: data.dim(),
            });
        }
        let rows: Vec<Vec<f64>> = data.iter().map(|r| self.transform_point(r)).collect();
        Dataset::from_rows(rows)
    }

    /// Standardizes a single point.
    ///
    /// # Panics
    ///
    /// Panics if `point.len()` differs from the fitted dimension.
    pub fn transform_point(&self, point: &[f64]) -> Vec<f64> {
        assert_eq!(point.len(), self.means.len(), "dimension mismatch");
        point
            .iter()
            .enumerate()
            .map(|(j, &v)| {
                let s = self.stds[j];
                if s > 0.0 {
                    (v - self.means[j]) / s
                } else {
                    v - self.means[j]
                }
            })
            .collect()
    }

    /// Maps a standardized point back to the original feature space.
    ///
    /// # Panics
    ///
    /// Panics if `point.len()` differs from the fitted dimension.
    pub fn inverse_point(&self, point: &[f64]) -> Vec<f64> {
        assert_eq!(point.len(), self.means.len(), "dimension mismatch");
        point
            .iter()
            .enumerate()
            .map(|(j, &v)| {
                let s = self.stds[j];
                if s > 0.0 {
                    v * s + self.means[j]
                } else {
                    v + self.means[j]
                }
            })
            .collect()
    }
}

/// Log-space transform `x' = log10(x + offset)` for heavy-tailed features.
///
/// The offset guards against zeros; the default (`1e-6`) sits well below
/// the smallest normalized task demand in the trace (~1e-4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Log10Transform {
    offset: f64,
}

impl Log10Transform {
    /// Creates a transform with the given zero-guard offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset <= 0`.
    pub fn new(offset: f64) -> Self {
        assert!(offset > 0.0, "offset must be positive, got {offset}");
        Log10Transform { offset }
    }

    /// Forward transform of one value.
    pub fn apply(&self, x: f64) -> f64 {
        (x + self.offset).log10()
    }

    /// Inverse transform of one value (clamped at zero).
    pub fn invert(&self, y: f64) -> f64 {
        (10f64.powf(y) - self.offset).max(0.0)
    }

    /// Forward transform of every value in a dataset.
    ///
    /// # Errors
    ///
    /// Propagates [`KMeansError::NonFiniteValue`] if the transform of any
    /// input overflows (e.g. `x <= -offset`).
    pub fn transform(&self, data: &Dataset) -> Result<Dataset, KMeansError> {
        let rows: Vec<Vec<f64>> =
            data.iter().map(|r| r.iter().map(|&v| self.apply(v)).collect()).collect();
        Dataset::from_rows(rows)
    }
}

impl Default for Log10Transform {
    fn default() -> Self {
        Log10Transform::new(1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizer_centers_and_scales() {
        let data =
            Dataset::from_rows(vec![vec![1.0, 100.0], vec![3.0, 100.0], vec![5.0, 100.0]]).unwrap();
        let s = Standardizer::fit(&data);
        assert_eq!(s.means(), &[3.0, 100.0]);
        let t = s.transform(&data).unwrap();
        // Column 0: mean 0, unit variance. Column 1: constant → centered.
        let col0 = t.column(0);
        assert!((col0.iter().sum::<f64>()).abs() < 1e-12);
        let var: f64 = col0.iter().map(|v| v * v).sum::<f64>() / 3.0;
        assert!((var - 1.0).abs() < 1e-12);
        assert!(t.column(1).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn standardizer_roundtrips_points() {
        let data = Dataset::from_rows(vec![vec![2.0, 4.0], vec![6.0, 8.0]]).unwrap();
        let s = Standardizer::fit(&data);
        let p = [3.5, 7.0];
        let back = s.inverse_point(&s.transform_point(&p));
        assert!((back[0] - p[0]).abs() < 1e-12);
        assert!((back[1] - p[1]).abs() < 1e-12);
    }

    #[test]
    fn standardizer_rejects_wrong_dim() {
        let data = Dataset::from_rows(vec![vec![1.0, 2.0]]).unwrap();
        let s = Standardizer::fit(&data);
        let other = Dataset::from_rows(vec![vec![1.0]]).unwrap();
        assert!(matches!(s.transform(&other), Err(KMeansError::DimensionMismatch { .. })));
    }

    #[test]
    fn log_transform_roundtrips() {
        let t = Log10Transform::default();
        for &x in &[0.0, 1e-4, 0.5, 1.0, 1000.0] {
            let back = t.invert(t.apply(x));
            assert!((back - x).abs() < 1e-9 * (1.0 + x), "x={x} back={back}");
        }
    }

    #[test]
    fn log_transform_compresses_orders_of_magnitude() {
        let t = Log10Transform::new(1e-6);
        let small = t.apply(0.001);
        let large = t.apply(1.0);
        assert!(large - small < 3.01 && large - small > 2.9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_offset_panics() {
        let _ = Log10Transform::new(0.0);
    }

    #[test]
    fn log_transform_dataset() {
        let data = Dataset::from_rows(vec![vec![0.0], vec![9.0]]).unwrap();
        let t = Log10Transform::new(1.0).transform(&data).unwrap();
        assert!((t.row(0)[0] - 0.0).abs() < 1e-12);
        assert!((t.row(1)[0] - 1.0).abs() < 1e-12);
    }
}

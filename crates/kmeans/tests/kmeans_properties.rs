//! Property-based tests for the clustering substrate.

use harmony_kmeans::{Dataset, KMeans, Log10Transform, Standardizer};
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (2usize..4, 8usize..60).prop_flat_map(|(dim, n)| {
        proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, dim),
            n,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Assignments cover every point, labels are in range, and the
    /// reported inertia matches a recomputation from the assignments.
    #[test]
    fn fit_invariants(rows in dataset_strategy(), k in 1usize..5, seed in 0u64..1000) {
        let data = Dataset::from_rows(rows.clone()).unwrap();
        prop_assume!(data.len() >= k);
        let model = KMeans::new(k).seed(seed).fit(&data).unwrap();
        prop_assert_eq!(model.assignments().len(), data.len());
        prop_assert!(model.assignments().iter().all(|&a| a < k));
        let mut inertia = 0.0;
        for (i, row) in rows.iter().enumerate() {
            let c = &model.centroids()[model.assignments()[i]];
            inertia += row.iter().zip(c).map(|(x, y)| (x - y) * (x - y)).sum::<f64>();
            // The assigned centroid is (weakly) the nearest one.
            for other in model.centroids() {
                let d_other: f64 =
                    row.iter().zip(other).map(|(x, y)| (x - y) * (x - y)).sum();
                let d_own: f64 = row.iter().zip(c).map(|(x, y)| (x - y) * (x - y)).sum();
                prop_assert!(d_own <= d_other + 1e-9);
            }
        }
        prop_assert!((inertia - model.inertia()).abs() < 1e-6 * (1.0 + inertia));
    }

    /// The centroid of each cluster is the mean of its members.
    #[test]
    fn centroids_are_cluster_means(rows in dataset_strategy(), seed in 0u64..1000) {
        let data = Dataset::from_rows(rows.clone()).unwrap();
        let k = 2.min(data.len());
        let model = KMeans::new(k).seed(seed).fit(&data).unwrap();
        for c in 0..k {
            let members: Vec<&Vec<f64>> = rows
                .iter()
                .enumerate()
                .filter(|(i, _)| model.assignments()[*i] == c)
                .map(|(_, r)| r)
                .collect();
            if members.is_empty() {
                continue;
            }
            for (j, &cv) in model.centroids()[c].iter().enumerate() {
                let mean: f64 =
                    members.iter().map(|r| r[j]).sum::<f64>() / members.len() as f64;
                prop_assert!((cv - mean).abs() < 1e-6 * (1.0 + mean.abs()), "dim {j}");
            }
        }
    }

    /// Standardizer round-trips points for any dataset.
    #[test]
    fn standardizer_roundtrip(rows in dataset_strategy()) {
        let data = Dataset::from_rows(rows.clone()).unwrap();
        let s = Standardizer::fit(&data);
        for row in &rows {
            let back = s.inverse_point(&s.transform_point(row));
            for (a, b) in back.iter().zip(row) {
                prop_assert!((a - b).abs() < 1e-8 * (1.0 + b.abs()));
            }
        }
    }

    /// Log transform round-trips positive values.
    #[test]
    fn log_roundtrip(x in 0.0f64..1e6, offset in 1e-9f64..1.0) {
        let t = Log10Transform::new(offset);
        let back = t.invert(t.apply(x));
        prop_assert!((back - x).abs() < 1e-6 * (1.0 + x));
    }
}

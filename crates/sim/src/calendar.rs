//! A calendar (bucketed) event queue keyed by `(SimTime, seq)`.
//!
//! The reference engine orders events with a global `BinaryHeap`; at
//! paper scale (millions of arrivals resident at once) the O(log n)
//! sift per operation and its cache behavior dominate the hot loop.
//! This queue hashes each event into `floor(time / width) mod buckets`
//! — amortized O(1) insert and pop for the steady state where event
//! density matches the bucket width.
//!
//! Determinism: the engine's event loop is *monotone* (nothing is ever
//! scheduled before the last popped time), so the queue walks bucket
//! windows strictly forward. Each bucket is kept sorted descending by
//! `(time, seq)` (min at the tail); the first bucket in window order
//! whose tail lies inside its own current window holds the global
//! minimum, and ties on time share a bucket, so the unique-`seq`
//! tie-break is honored. Pop order is therefore *identical* to the
//! `BinaryHeap`'s — the engines produce byte-identical reports.

use harmony_model::SimTime;

#[derive(Debug, Clone)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

/// The bucketed queue. Generic over the event payload; ordering uses
/// only `(time, seq)`.
#[derive(Debug, Clone)]
pub(crate) struct CalendarQueue<T> {
    /// Each bucket sorted descending by `(time, seq)`: min at the tail.
    buckets: Vec<Vec<Entry<T>>>,
    /// Power of two.
    nb: usize,
    /// Bucket width in seconds.
    width: f64,
    len: usize,
    peak: usize,
    /// Monotone floor: the last popped time (seconds).
    last: f64,
}

impl<T> CalendarQueue<T> {
    /// Sizes the calendar for roughly `expected` events spread over
    /// `span_secs`: the width targets one event per bucket per lap.
    pub(crate) fn new(span_secs: f64, expected: usize) -> Self {
        let nb = expected.next_power_of_two().clamp(16, 1 << 21);
        let span = if span_secs.is_finite() && span_secs > 0.0 {
            span_secs
        } else {
            1.0
        };
        let width = (span / expected.max(1) as f64).max(1e-6);
        CalendarQueue {
            buckets: (0..nb).map(|_| Vec::new()).collect(),
            nb,
            width,
            len: 0,
            peak: 0,
            last: 0.0,
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// High-watermark of resident events.
    pub(crate) fn peak(&self) -> usize {
        self.peak
    }

    #[inline]
    fn day_of(&self, secs: f64) -> u64 {
        // Far-future guard keeps the cast defined; such events would
        // sort last anyway.
        (secs / self.width).min(1e18) as u64
    }

    /// Inserts an event. `seq` must be unique per queue (the engine's
    /// monotone event counter).
    pub(crate) fn push(&mut self, time: SimTime, seq: u64, payload: T) {
        // The event loop never schedules into the past; clamp defensively
        // so a zero-delay edge case cannot corrupt window ordering.
        let secs = time.as_secs().max(self.last);
        let b = (self.day_of(secs) as usize) & (self.nb - 1);
        let bucket = &mut self.buckets[b];
        let pos = bucket.partition_point(|e| (e.time, e.seq) > (time, seq));
        bucket.insert(pos, Entry { time, seq, payload });
        self.len += 1;
        self.peak = self.peak.max(self.len);
        if self.len > 2 * self.nb {
            self.resize(self.nb * 2);
        }
    }

    /// Removes and returns the event with the smallest `(time, seq)`.
    pub(crate) fn pop(&mut self) -> Option<(SimTime, T)> {
        if self.len == 0 {
            return None;
        }
        if self.len < self.nb / 4 && self.nb > 16 {
            self.resize(self.nb / 2);
        }
        let start_day = self.day_of(self.last);
        let mut found: Option<usize> = None;
        for k in 0..self.nb as u64 {
            let day = start_day + k;
            let b = (day as usize) & (self.nb - 1);
            if let Some(tail) = self.buckets[b].last() {
                if self.day_of(tail.time.as_secs()) == day {
                    found = Some(b);
                    break;
                }
            }
        }
        let b = match found {
            Some(b) => b,
            // A full lap without a hit: the next event is more than one
            // lap ahead (sparse phase). Direct-search the bucket tails
            // for the global minimum — each tail is its bucket's min.
            None => self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, bucket)| bucket.last().map(|e| (i, (e.time, e.seq))))
                .min_by_key(|&(_, key)| key)
                .map(|(i, _)| i)?,
        };
        // Non-empty by construction of `b`.
        let entry = self.buckets[b].pop()?;
        self.len -= 1;
        self.last = entry.time.as_secs();
        Some((entry.time, entry.payload))
    }

    fn resize(&mut self, new_nb: usize) {
        let old = std::mem::take(&mut self.buckets);
        self.nb = new_nb;
        self.buckets = (0..new_nb).map(|_| Vec::new()).collect();
        for bucket in old {
            for e in bucket {
                let secs = e.time.as_secs().max(self.last);
                let b = (self.day_of(secs) as usize) & (self.nb - 1);
                self.buckets[b].push(e);
            }
        }
        for bucket in &mut self.buckets {
            // Descending by (time, seq): min at the tail.
            bucket.sort_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    /// Drives a calendar and a heap with the same monotone workload and
    /// asserts identical pop sequences.
    fn heap_equivalence(width_hint: (f64, usize), ops: &[(f64, u64)]) {
        let mut cal = CalendarQueue::new(width_hint.0, width_hint.1);
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u64)>> = BinaryHeap::new();
        // Interleave: push batches, pop one, push scheduled follow-ups.
        let mut it = ops.iter();
        for _ in 0..ops.len() {
            if let Some(&(t, seq)) = it.next() {
                cal.push(SimTime::from_secs(t), seq, seq);
                heap.push(std::cmp::Reverse((t.to_bits(), seq)));
            }
        }
        loop {
            let want = heap.pop();
            let got = cal.pop();
            match (want, got) {
                (None, None) => break,
                (Some(std::cmp::Reverse((tb, seq))), Some((time, payload))) => {
                    assert_eq!(time.as_secs().to_bits(), tb);
                    assert_eq!(payload, seq);
                }
                other => panic!("length mismatch: {other:?}"),
            }
        }
        assert_eq!(cal.len(), 0);
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let ops: Vec<(f64, u64)> = vec![
            (10.0, 1),
            (5.0, 2),
            (5.0, 3),
            (100.0, 4),
            (0.0, 5),
            (5.0, 6),
            (99.9, 7),
        ];
        heap_equivalence((100.0, 8), &ops);
    }

    #[test]
    fn dense_and_sparse_phases_match_heap() {
        // Dense burst at t≈0..100, then a long gap, then a far cluster —
        // exercises the lap scan, the direct-search fallback, and both
        // resize directions.
        let mut ops = Vec::new();
        let mut seq = 0u64;
        for i in 0..500 {
            seq += 1;
            ops.push(((i % 100) as f64 * 0.37, seq));
        }
        for i in 0..20 {
            seq += 1;
            ops.push((1.0e6 + i as f64, seq));
        }
        heap_equivalence((100.0, 64), &ops);
    }

    #[test]
    fn interleaved_push_pop_stays_monotone() {
        let mut cal = CalendarQueue::new(1000.0, 16);
        let mut seq = 0u64;
        for i in 0..50 {
            seq += 1;
            cal.push(SimTime::from_secs(i as f64 * 10.0), seq, seq);
        }
        let mut last = -1.0;
        let mut popped = 0;
        while let Some((t, _)) = cal.pop() {
            assert!(t.as_secs() >= last);
            last = t.as_secs();
            popped += 1;
            // Schedule follow-up work relative to "now", like Finish
            // events.
            if popped <= 30 {
                seq += 1;
                cal.push(SimTime::from_secs(last + 3.5), seq, seq);
            }
        }
        assert_eq!(popped, 80);
        assert!(cal.peak() >= 50);
    }

    #[test]
    fn equal_times_break_ties_by_seq() {
        let mut cal = CalendarQueue::new(10.0, 4);
        for seq in [7u64, 3, 9, 1] {
            cal.push(SimTime::from_secs(42.0), seq, seq);
        }
        let order: Vec<u64> = std::iter::from_fn(|| cal.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 3, 7, 9]);
    }
}

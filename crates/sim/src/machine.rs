//! Individual machine state and energy accounting.

use harmony_model::{MachineTypeId, PowerModel, Resources, SimTime};
use serde::{Deserialize, Serialize};

/// Index of a machine within a [`crate::Cluster`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct MachineId(pub usize);

/// Machine lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MachineState {
    /// Powered off; draws nothing, hosts nothing.
    Off,
    /// Booting; draws idle power, cannot host tasks until `ready_at`.
    Booting {
        /// When the machine becomes schedulable.
        ready_at: SimTime,
    },
    /// On and schedulable.
    On,
    /// Crashed by an injected fault; draws nothing, hosts nothing, and
    /// cannot be powered on until it recovers at `until`.
    Failed {
        /// When the machine becomes recoverable.
        until: SimTime,
    },
}

/// One physical machine: capacity, current allocation, lifecycle state,
/// and lazily-integrated energy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    id: MachineId,
    type_id: MachineTypeId,
    capacity: Resources,
    power: PowerModel,
    state: MachineState,
    used: Resources,
    running_tasks: usize,
    energy_wh: f64,
    last_update: SimTime,
}

impl Machine {
    /// Creates a powered-off machine.
    pub fn new(
        id: MachineId,
        type_id: MachineTypeId,
        capacity: Resources,
        power: PowerModel,
    ) -> Self {
        Machine {
            id,
            type_id,
            capacity,
            power,
            state: MachineState::Off,
            used: Resources::ZERO,
            running_tasks: 0,
            energy_wh: 0.0,
            last_update: SimTime::ZERO,
        }
    }

    /// This machine's id.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// This machine's type.
    pub fn type_id(&self) -> MachineTypeId {
        self.type_id
    }

    /// Nominal capacity.
    pub fn capacity(&self) -> Resources {
        self.capacity
    }

    /// Currently allocated resources.
    pub fn used(&self) -> Resources {
        self.used
    }

    /// Remaining free resources.
    pub fn free(&self) -> Resources {
        self.capacity - self.used
    }

    /// Current lifecycle state.
    pub fn state(&self) -> MachineState {
        self.state
    }

    /// Number of tasks currently running here.
    pub fn running_tasks(&self) -> usize {
        self.running_tasks
    }

    /// `true` if the machine is `On`.
    pub fn is_on(&self) -> bool {
        matches!(self.state, MachineState::On)
    }

    /// `true` if the machine is `On` or `Booting` (counts toward the
    /// provisioned-capacity targets). Crashed machines are not active:
    /// the controller cannot count on them and may provision around
    /// them.
    pub fn is_active(&self) -> bool {
        matches!(self.state, MachineState::On | MachineState::Booting { .. })
    }

    /// `true` if the machine is crashed and waiting out its downtime.
    pub fn is_failed(&self) -> bool {
        matches!(self.state, MachineState::Failed { .. })
    }

    /// `true` if `demand` fits in the remaining capacity of an `On`
    /// machine.
    pub fn can_place(&self, demand: Resources) -> bool {
        self.is_on() && (self.used + demand).fits_within(self.capacity)
    }

    /// Utilization vector `used / capacity` (Eq. 6).
    pub fn utilization(&self) -> Resources {
        self.used.utilization_of(self.capacity)
    }

    /// Instantaneous draw in watts: linear model when on, idle draw when
    /// booting, zero when off.
    pub fn power_watts(&self) -> f64 {
        match self.state {
            MachineState::Off | MachineState::Failed { .. } => 0.0,
            MachineState::Booting { .. } => self.power.idle_watts,
            MachineState::On => self.power.power_watts(self.utilization()),
        }
    }

    /// Integrates energy since the last update. Must be called (by the
    /// cluster) before any state or allocation change.
    pub(crate) fn accrue_energy(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_update);
        self.energy_wh += self.power_watts() * dt.as_hours();
        self.last_update = now;
    }

    /// Total energy consumed so far, in watt-hours (accrued up to the
    /// last update).
    pub fn energy_wh(&self) -> f64 {
        self.energy_wh
    }

    /// Starts booting. No-op unless currently `Off`.
    pub(crate) fn power_on(&mut self, now: SimTime, ready_at: SimTime) -> bool {
        if matches!(self.state, MachineState::Off) {
            self.accrue_energy(now);
            self.state = MachineState::Booting { ready_at };
            true
        } else {
            false
        }
    }

    /// Completes booting. No-op unless currently `Booting` with a ready
    /// time at or before `now` — a stale boot event for a machine that
    /// was cycled off and on again must not complete the newer boot
    /// early.
    pub(crate) fn boot_complete(&mut self, now: SimTime) -> bool {
        if matches!(self.state, MachineState::Booting { ready_at } if ready_at <= now) {
            self.accrue_energy(now);
            self.state = MachineState::On;
            true
        } else {
            false
        }
    }

    /// Powers off. Only legal for idle machines.
    ///
    /// Returns `false` (and does nothing) if tasks are running or the
    /// machine is already off.
    pub(crate) fn power_off(&mut self, now: SimTime) -> bool {
        if self.running_tasks == 0 && self.is_active() {
            self.accrue_energy(now);
            self.state = MachineState::Off;
            self.used = Resources::ZERO;
            true
        } else {
            false
        }
    }

    /// Crashes the machine: it stops drawing power and drops every
    /// hosted allocation (the engine re-queues the tasks). Legal from
    /// `On` or `Booting`; returns `false` otherwise.
    pub(crate) fn crash(&mut self, now: SimTime, until: SimTime) -> bool {
        if !self.is_active() {
            return false;
        }
        self.accrue_energy(now);
        self.state = MachineState::Failed { until };
        self.used = Resources::ZERO;
        self.running_tasks = 0;
        true
    }

    /// Ends a crash: the machine becomes `Off` (and may be powered on
    /// again). Legal only from `Failed` with a downtime at or before
    /// `now`; returns `false` otherwise.
    pub(crate) fn recover(&mut self, now: SimTime) -> bool {
        if matches!(self.state, MachineState::Failed { until } if until <= now) {
            self.accrue_energy(now);
            self.state = MachineState::Off;
            true
        } else {
            false
        }
    }

    /// Allocates `demand` for one task.
    ///
    /// Returns `false` (and does nothing) if the machine is not on or
    /// the demand does not fit.
    pub(crate) fn allocate(&mut self, now: SimTime, demand: Resources) -> bool {
        if !self.can_place(demand) {
            return false;
        }
        self.accrue_energy(now);
        self.used += demand;
        self.running_tasks += 1;
        true
    }

    /// Releases `demand` for one finished task.
    ///
    /// # Panics
    ///
    /// Panics if no tasks are running (release without allocate).
    pub(crate) fn release(&mut self, now: SimTime, demand: Resources) {
        assert!(
            self.running_tasks > 0,
            "release on an idle machine {}",
            self.id.0
        );
        self.accrue_energy(now);
        self.running_tasks -= 1;
        self.used = (self.used - demand).max(Resources::ZERO);
        if self.running_tasks == 0 {
            self.used = Resources::ZERO; // clear rounding residue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(
            MachineId(0),
            MachineTypeId(1),
            Resources::new(0.5, 0.5),
            PowerModel::new(100.0, Resources::new(100.0, 50.0)),
        )
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut m = machine();
        assert!(matches!(m.state(), MachineState::Off));
        assert!(!m.is_active());
        assert!(m.power_on(SimTime::ZERO, SimTime::from_secs(120.0)));
        assert!(m.is_active());
        assert!(!m.is_on());
        assert!(m.boot_complete(SimTime::from_secs(120.0)));
        assert!(m.is_on());
        assert!(m.power_off(SimTime::from_secs(200.0)));
        assert!(!m.is_active());
    }

    #[test]
    fn double_transitions_are_noops() {
        let mut m = machine();
        assert!(m.power_on(SimTime::ZERO, SimTime::from_secs(1.0)));
        assert!(!m.power_on(SimTime::ZERO, SimTime::from_secs(1.0)));
        assert!(m.boot_complete(SimTime::from_secs(1.0)));
        assert!(!m.boot_complete(SimTime::from_secs(1.0)));
        assert!(m.power_off(SimTime::from_secs(2.0)));
        assert!(!m.power_off(SimTime::from_secs(2.0)));
    }

    #[test]
    fn allocation_respects_capacity_and_state() {
        let mut m = machine();
        let demand = Resources::new(0.3, 0.3);
        // Not on yet.
        assert!(!m.allocate(SimTime::ZERO, demand));
        m.power_on(SimTime::ZERO, SimTime::ZERO);
        m.boot_complete(SimTime::ZERO);
        assert!(m.allocate(SimTime::ZERO, demand));
        // Second one exceeds capacity.
        assert!(!m.allocate(SimTime::ZERO, demand));
        assert!(m.allocate(SimTime::ZERO, Resources::new(0.2, 0.1)));
        assert_eq!(m.running_tasks(), 2);
        // Cannot power off while running.
        assert!(!m.power_off(SimTime::from_secs(10.0)));
        m.release(SimTime::from_secs(10.0), demand);
        m.release(SimTime::from_secs(10.0), Resources::new(0.2, 0.1));
        assert_eq!(m.used(), Resources::ZERO);
        assert!(m.power_off(SimTime::from_secs(10.0)));
    }

    #[test]
    #[should_panic(expected = "release on an idle machine")]
    fn release_without_allocate_panics() {
        let mut m = machine();
        m.release(SimTime::ZERO, Resources::new(0.1, 0.1));
    }

    #[test]
    fn energy_integration_over_states() {
        let mut m = machine();
        // Off for 1h: 0 Wh.
        m.accrue_energy(SimTime::from_hours(1.0));
        assert_eq!(m.energy_wh(), 0.0);
        // Booting for 1h: idle 100 W → 100 Wh.
        m.power_on(SimTime::from_hours(1.0), SimTime::from_hours(2.0));
        m.boot_complete(SimTime::from_hours(2.0));
        assert!((m.energy_wh() - 100.0).abs() < 1e-9);
        // On, idle for 1h: another 100 Wh.
        m.accrue_energy(SimTime::from_hours(3.0));
        assert!((m.energy_wh() - 200.0).abs() < 1e-9);
        // Full load for 1h: 100 + 100*1.0 + 50*1.0 = 250 W... utilization
        // is (0.5/0.5, 0.5/0.5) = (1,1) when fully used.
        assert!(m.allocate(SimTime::from_hours(3.0), Resources::new(0.5, 0.5)));
        m.accrue_energy(SimTime::from_hours(4.0));
        assert!(
            (m.energy_wh() - 450.0).abs() < 1e-9,
            "wh = {}",
            m.energy_wh()
        );
    }

    #[test]
    fn crash_and_recover_lifecycle() {
        let mut m = machine();
        // Crashing an off machine is a no-op.
        assert!(!m.crash(SimTime::ZERO, SimTime::from_secs(100.0)));
        m.power_on(SimTime::ZERO, SimTime::ZERO);
        m.boot_complete(SimTime::ZERO);
        assert!(m.allocate(SimTime::ZERO, Resources::new(0.3, 0.3)));
        assert!(m.crash(SimTime::from_secs(10.0), SimTime::from_secs(110.0)));
        assert!(m.is_failed());
        assert!(!m.is_active());
        assert_eq!(m.running_tasks(), 0);
        assert_eq!(m.used(), Resources::ZERO);
        assert_eq!(m.power_watts(), 0.0);
        // Cannot allocate, power on, or power off while failed.
        assert!(!m.allocate(SimTime::from_secs(20.0), Resources::new(0.1, 0.1)));
        assert!(!m.power_on(SimTime::from_secs(20.0), SimTime::from_secs(30.0)));
        assert!(!m.power_off(SimTime::from_secs(20.0)));
        // Recovery before the downtime elapses is refused.
        assert!(!m.recover(SimTime::from_secs(50.0)));
        assert!(m.recover(SimTime::from_secs(110.0)));
        assert!(matches!(m.state(), MachineState::Off));
        // And the machine boots normally again.
        assert!(m.power_on(SimTime::from_secs(120.0), SimTime::from_secs(240.0)));
    }

    #[test]
    fn failed_machine_draws_no_energy() {
        let mut m = machine();
        m.power_on(SimTime::ZERO, SimTime::ZERO);
        m.boot_complete(SimTime::ZERO);
        m.accrue_energy(SimTime::from_hours(1.0)); // 100 Wh idle
        assert!(m.crash(SimTime::from_hours(1.0), SimTime::from_hours(3.0)));
        m.accrue_energy(SimTime::from_hours(2.0));
        assert!(
            (m.energy_wh() - 100.0).abs() < 1e-9,
            "wh = {}",
            m.energy_wh()
        );
    }

    #[test]
    fn utilization_and_power() {
        let mut m = machine();
        m.power_on(SimTime::ZERO, SimTime::ZERO);
        m.boot_complete(SimTime::ZERO);
        assert!(m.allocate(SimTime::ZERO, Resources::new(0.25, 0.1)));
        let u = m.utilization();
        assert!((u.cpu - 0.5).abs() < 1e-12);
        assert!((u.mem - 0.2).abs() < 1e-12);
        assert!((m.power_watts() - (100.0 + 50.0 + 10.0)).abs() < 1e-9);
        assert_eq!(m.free(), Resources::new(0.25, 0.4));
    }
}

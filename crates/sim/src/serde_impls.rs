//! Hand-written serde impls for the simulator types that cross a
//! serialization boundary: degradation/fault events (daemon wire
//! protocol + checkpoints), fault plans (replay checkpoints), and the
//! full [`SimReport`] (bit-identical resume verification, JSON bench
//! artifacts).
//!
//! The vendored `serde` stand-in has no derive machinery (its derive
//! macros are no-ops), so every type is implemented explicitly here.
//! Encodings follow what the upstream derives would produce: structs are
//! objects keyed by field name, unit enum variants are strings, and
//! data-carrying variants are externally tagged
//! (`{"VariantName": {fields...}}`).

use std::collections::BTreeMap;

use harmony_model::SimTime;
use serde::value::{DeError, Value};
use serde::{Deserialize, Serialize};

use crate::controller::{DegradationEvent, DegradationKind, ForecastTier};
use crate::faults::{FaultEvent, FaultKind, FaultPlan, FaultRecord, FaultRecordKind};
use crate::machine::MachineId;
use crate::metrics::{DelayStats, SimReport, TimePoint};

impl Serialize for MachineId {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}

impl Deserialize for MachineId {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        usize::from_value(v).map(MachineId)
    }
}

/// Builds an object from `(key, value)` pairs.
fn object(fields: &[(&str, Value)]) -> Value {
    let mut map = BTreeMap::new();
    for (k, v) in fields {
        map.insert((*k).to_owned(), v.clone());
    }
    Value::Object(map)
}

/// Builds an externally-tagged enum variant: `{"Tag": payload}`.
fn tagged(tag: &str, payload: Value) -> Value {
    object(&[(tag, payload)])
}

/// Splits an externally-tagged variant into its tag and payload.
/// Unit variants arrive as plain strings and yield a `Null` payload.
fn untag(v: &Value) -> Result<(&str, &Value), DeError> {
    match v {
        Value::String(tag) => Ok((tag.as_str(), &Value::Null)),
        Value::Object(map) if map.len() == 1 => {
            let (tag, payload) = map
                .iter()
                .next()
                .ok_or_else(|| DeError::new("empty variant"))?;
            Ok((tag.as_str(), payload))
        }
        _ => Err(DeError::new(
            "expected an enum variant (string or single-key object)",
        )),
    }
}

impl Serialize for ForecastTier {
    fn to_value(&self) -> Value {
        match self {
            ForecastTier::Arima => "Arima",
            ForecastTier::MovingAverage => "MovingAverage",
            ForecastTier::LastObservation => "LastObservation",
        }
        .to_value()
    }
}

impl Deserialize for ForecastTier {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_str() {
            Some("Arima") => Ok(ForecastTier::Arima),
            Some("MovingAverage") => Ok(ForecastTier::MovingAverage),
            Some("LastObservation") => Ok(ForecastTier::LastObservation),
            _ => Err(DeError::new("unknown ForecastTier")),
        }
    }
}

impl Serialize for DegradationKind {
    fn to_value(&self) -> Value {
        match self {
            DegradationKind::ForecastFallback { class, tier } => tagged(
                "ForecastFallback",
                object(&[("class", class.to_value()), ("tier", tier.to_value())]),
            ),
            DegradationKind::LpReusedPreviousPlan => "LpReusedPreviousPlan".to_value(),
            DegradationKind::LpGreedyFallback => "LpGreedyFallback".to_value(),
            DegradationKind::ControlHold => "ControlHold".to_value(),
        }
    }
}

impl Deserialize for DegradationKind {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let (tag, payload) = untag(v)?;
        match tag {
            "ForecastFallback" => Ok(DegradationKind::ForecastFallback {
                class: usize::from_value(payload.field("class")?)?,
                tier: ForecastTier::from_value(payload.field("tier")?)?,
            }),
            "LpReusedPreviousPlan" => Ok(DegradationKind::LpReusedPreviousPlan),
            "LpGreedyFallback" => Ok(DegradationKind::LpGreedyFallback),
            "ControlHold" => Ok(DegradationKind::ControlHold),
            other => Err(DeError::new(format!("unknown DegradationKind `{other}`"))),
        }
    }
}

impl Serialize for DegradationEvent {
    fn to_value(&self) -> Value {
        object(&[
            ("at", self.at.to_value()),
            ("kind", self.kind.to_value()),
            ("detail", self.detail.to_value()),
        ])
    }
}

impl Deserialize for DegradationEvent {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(DegradationEvent {
            at: SimTime::from_value(v.field("at")?)?,
            kind: DegradationKind::from_value(v.field("kind")?)?,
            detail: String::from_value(v.field("detail")?)?,
        })
    }
}

impl Serialize for FaultKind {
    fn to_value(&self) -> Value {
        match self {
            FaultKind::MachineCrash { down } => {
                tagged("MachineCrash", object(&[("down", down.to_value())]))
            }
            FaultKind::SlowBoot { factor, duration } => tagged(
                "SlowBoot",
                object(&[
                    ("factor", factor.to_value()),
                    ("duration", duration.to_value()),
                ]),
            ),
            FaultKind::TaskEviction { count } => {
                tagged("TaskEviction", object(&[("count", count.to_value())]))
            }
            FaultKind::ArrivalBurst { window } => {
                tagged("ArrivalBurst", object(&[("window", window.to_value())]))
            }
            FaultKind::SpotEviction { machine_type, count, down } => tagged(
                "SpotEviction",
                object(&[
                    ("machine_type", machine_type.to_value()),
                    ("count", count.to_value()),
                    ("down", down.to_value()),
                ]),
            ),
        }
    }
}

impl Deserialize for FaultKind {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let (tag, payload) = untag(v)?;
        match tag {
            "MachineCrash" => Ok(FaultKind::MachineCrash {
                down: Deserialize::from_value(payload.field("down")?)?,
            }),
            "SlowBoot" => Ok(FaultKind::SlowBoot {
                factor: f64::from_value(payload.field("factor")?)?,
                duration: Deserialize::from_value(payload.field("duration")?)?,
            }),
            "TaskEviction" => Ok(FaultKind::TaskEviction {
                count: usize::from_value(payload.field("count")?)?,
            }),
            "ArrivalBurst" => Ok(FaultKind::ArrivalBurst {
                window: Deserialize::from_value(payload.field("window")?)?,
            }),
            "SpotEviction" => Ok(FaultKind::SpotEviction {
                machine_type: Deserialize::from_value(payload.field("machine_type")?)?,
                count: usize::from_value(payload.field("count")?)?,
                down: Deserialize::from_value(payload.field("down")?)?,
            }),
            other => Err(DeError::new(format!("unknown FaultKind `{other}`"))),
        }
    }
}

impl Serialize for FaultEvent {
    fn to_value(&self) -> Value {
        object(&[("at", self.at.to_value()), ("kind", self.kind.to_value())])
    }
}

impl Deserialize for FaultEvent {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(FaultEvent {
            at: SimTime::from_value(v.field("at")?)?,
            kind: FaultKind::from_value(v.field("kind")?)?,
        })
    }
}

impl Serialize for FaultPlan {
    fn to_value(&self) -> Value {
        let events = Value::Array(self.events().iter().map(Serialize::to_value).collect());
        object(&[("seed", self.seed().to_value()), ("events", events)])
    }
}

impl Deserialize for FaultPlan {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let seed = u64::from_value(v.field("seed")?)?;
        let events = Vec::<FaultEvent>::from_value(v.field("events")?)?;
        let mut plan = FaultPlan::new(seed);
        for ev in events {
            plan = plan.with_event(ev.at, ev.kind);
        }
        Ok(plan)
    }
}

impl Serialize for FaultRecordKind {
    fn to_value(&self) -> Value {
        match self {
            FaultRecordKind::MachineCrash {
                machine,
                evicted,
                failed,
            } => tagged(
                "MachineCrash",
                object(&[
                    ("machine", machine.to_value()),
                    ("evicted", evicted.to_value()),
                    ("failed", failed.to_value()),
                ]),
            ),
            FaultRecordKind::MachineRecovered { machine } => tagged(
                "MachineRecovered",
                object(&[("machine", machine.to_value())]),
            ),
            FaultRecordKind::SlowBootStart { factor } => {
                tagged("SlowBootStart", object(&[("factor", factor.to_value())]))
            }
            FaultRecordKind::SlowBootEnd => "SlowBootEnd".to_value(),
            FaultRecordKind::TaskEviction { evicted, failed } => tagged(
                "TaskEviction",
                object(&[
                    ("evicted", evicted.to_value()),
                    ("failed", failed.to_value()),
                ]),
            ),
            FaultRecordKind::ArrivalBurst { tasks_warped } => tagged(
                "ArrivalBurst",
                object(&[("tasks_warped", tasks_warped.to_value())]),
            ),
            FaultRecordKind::SpotEviction {
                machine_type,
                machines,
                evicted,
                failed,
            } => tagged(
                "SpotEviction",
                object(&[
                    ("machine_type", machine_type.to_value()),
                    ("machines", machines.to_value()),
                    ("evicted", evicted.to_value()),
                    ("failed", failed.to_value()),
                ]),
            ),
        }
    }
}

impl Deserialize for FaultRecordKind {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let (tag, payload) = untag(v)?;
        match tag {
            "MachineCrash" => Ok(FaultRecordKind::MachineCrash {
                machine: MachineId::from_value(payload.field("machine")?)?,
                evicted: usize::from_value(payload.field("evicted")?)?,
                failed: usize::from_value(payload.field("failed")?)?,
            }),
            "MachineRecovered" => Ok(FaultRecordKind::MachineRecovered {
                machine: MachineId::from_value(payload.field("machine")?)?,
            }),
            "SlowBootStart" => Ok(FaultRecordKind::SlowBootStart {
                factor: f64::from_value(payload.field("factor")?)?,
            }),
            "SlowBootEnd" => Ok(FaultRecordKind::SlowBootEnd),
            "TaskEviction" => Ok(FaultRecordKind::TaskEviction {
                evicted: usize::from_value(payload.field("evicted")?)?,
                failed: usize::from_value(payload.field("failed")?)?,
            }),
            "ArrivalBurst" => Ok(FaultRecordKind::ArrivalBurst {
                tasks_warped: usize::from_value(payload.field("tasks_warped")?)?,
            }),
            "SpotEviction" => Ok(FaultRecordKind::SpotEviction {
                machine_type: Deserialize::from_value(payload.field("machine_type")?)?,
                machines: usize::from_value(payload.field("machines")?)?,
                evicted: usize::from_value(payload.field("evicted")?)?,
                failed: usize::from_value(payload.field("failed")?)?,
            }),
            other => Err(DeError::new(format!("unknown FaultRecordKind `{other}`"))),
        }
    }
}

impl Serialize for FaultRecord {
    fn to_value(&self) -> Value {
        object(&[("at", self.at.to_value()), ("kind", self.kind.to_value())])
    }
}

impl Deserialize for FaultRecord {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(FaultRecord {
            at: SimTime::from_value(v.field("at")?)?,
            kind: FaultRecordKind::from_value(v.field("kind")?)?,
        })
    }
}

impl Serialize for TimePoint {
    fn to_value(&self) -> Value {
        object(&[
            ("time", self.time.to_value()),
            ("power_watts", self.power_watts.to_value()),
            ("active_per_type", self.active_per_type.to_value()),
            ("used_per_type", self.used_per_type.to_value()),
            ("pending_tasks", self.pending_tasks.to_value()),
        ])
    }
}

impl Deserialize for TimePoint {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(TimePoint {
            time: SimTime::from_value(v.field("time")?)?,
            power_watts: f64::from_value(v.field("power_watts")?)?,
            active_per_type: Vec::from_value(v.field("active_per_type")?)?,
            used_per_type: Vec::from_value(v.field("used_per_type")?)?,
            pending_tasks: usize::from_value(v.field("pending_tasks")?)?,
        })
    }
}

impl Serialize for DelayStats {
    fn to_value(&self) -> Value {
        object(&[
            ("count", self.count.to_value()),
            ("mean", self.mean.to_value()),
            ("p50", self.p50.to_value()),
            ("p90", self.p90.to_value()),
            ("p95", self.p95.to_value()),
            ("p99", self.p99.to_value()),
            ("max", self.max.to_value()),
            ("immediate_fraction", self.immediate_fraction.to_value()),
        ])
    }
}

impl Deserialize for DelayStats {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(DelayStats {
            count: usize::from_value(v.field("count")?)?,
            mean: f64::from_value(v.field("mean")?)?,
            p50: f64::from_value(v.field("p50")?)?,
            p90: f64::from_value(v.field("p90")?)?,
            p95: f64::from_value(v.field("p95")?)?,
            p99: f64::from_value(v.field("p99")?)?,
            max: f64::from_value(v.field("max")?)?,
            immediate_fraction: f64::from_value(v.field("immediate_fraction")?)?,
        })
    }
}

impl Serialize for SimReport {
    fn to_value(&self) -> Value {
        object(&[
            (
                "delays_by_group",
                Value::Array(
                    self.delays_by_group
                        .iter()
                        .map(Serialize::to_value)
                        .collect(),
                ),
            ),
            ("tasks_completed", self.tasks_completed.to_value()),
            ("tasks_running_at_end", self.tasks_running_at_end.to_value()),
            ("tasks_pending_at_end", self.tasks_pending_at_end.to_value()),
            ("tasks_unschedulable", self.tasks_unschedulable.to_value()),
            ("tasks_failed", self.tasks_failed.to_value()),
            ("total_energy_wh", self.total_energy_wh.to_value()),
            ("energy_cost_dollars", self.energy_cost_dollars.to_value()),
            ("switch_count", self.switch_count.to_value()),
            ("switch_cost_dollars", self.switch_cost_dollars.to_value()),
            ("migrations", self.migrations.to_value()),
            ("evictions", self.evictions.to_value()),
            ("faults", self.faults.to_value()),
            ("degradations", self.degradations.to_value()),
            ("series", self.series.to_value()),
        ])
    }
}

impl Deserialize for SimReport {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let groups = Vec::<Vec<f64>>::from_value(v.field("delays_by_group")?)?;
        let delays_by_group: [Vec<f64>; 3] = groups
            .try_into()
            .map_err(|_| DeError::new("delays_by_group must have exactly 3 groups"))?;
        Ok(SimReport {
            delays_by_group,
            tasks_completed: usize::from_value(v.field("tasks_completed")?)?,
            tasks_running_at_end: usize::from_value(v.field("tasks_running_at_end")?)?,
            tasks_pending_at_end: usize::from_value(v.field("tasks_pending_at_end")?)?,
            tasks_unschedulable: usize::from_value(v.field("tasks_unschedulable")?)?,
            tasks_failed: usize::from_value(v.field("tasks_failed")?)?,
            total_energy_wh: f64::from_value(v.field("total_energy_wh")?)?,
            energy_cost_dollars: f64::from_value(v.field("energy_cost_dollars")?)?,
            switch_count: usize::from_value(v.field("switch_count")?)?,
            switch_cost_dollars: f64::from_value(v.field("switch_cost_dollars")?)?,
            migrations: usize::from_value(v.field("migrations")?)?,
            evictions: usize::from_value(v.field("evictions")?)?,
            faults: Vec::from_value(v.field("faults")?)?,
            degradations: Vec::from_value(v.field("degradations")?)?,
            series: Vec::from_value(v.field("series")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_model::SimDuration;

    #[test]
    fn degradation_event_roundtrip() {
        let events = vec![
            DegradationEvent {
                at: SimTime::from_secs(600.0),
                kind: DegradationKind::ForecastFallback {
                    class: 3,
                    tier: ForecastTier::MovingAverage,
                },
                detail: "ARIMA failed: singular".to_owned(),
            },
            DegradationEvent {
                at: SimTime::ZERO,
                kind: DegradationKind::ControlHold,
                detail: String::new(),
            },
        ];
        for ev in &events {
            let back = DegradationEvent::from_value(&ev.to_value()).unwrap();
            assert_eq!(&back, ev);
        }
    }

    #[test]
    fn fault_plan_roundtrip_preserves_seed_and_events() {
        let plan = FaultPlan::scenario("mixed", 77, SimDuration::from_hours(4.0)).unwrap();
        let back = FaultPlan::from_value(&plan.to_value()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn spot_eviction_kind_roundtrips() {
        let kind = FaultKind::SpotEviction {
            machine_type: harmony_model::MachineTypeId(2),
            count: 3,
            down: SimDuration::from_secs(900.0),
        };
        let back = FaultKind::from_value(&kind.to_value()).unwrap();
        assert_eq!(back, kind);
    }

    #[test]
    fn fault_record_kinds_roundtrip() {
        let kinds = vec![
            FaultRecordKind::MachineCrash {
                machine: MachineId(7),
                evicted: 3,
                failed: 1,
            },
            FaultRecordKind::MachineRecovered {
                machine: MachineId(7),
            },
            FaultRecordKind::SlowBootStart { factor: 3.5 },
            FaultRecordKind::SlowBootEnd,
            FaultRecordKind::TaskEviction {
                evicted: 10,
                failed: 0,
            },
            FaultRecordKind::ArrivalBurst { tasks_warped: 42 },
            FaultRecordKind::SpotEviction {
                machine_type: harmony_model::MachineTypeId(4),
                machines: 2,
                evicted: 6,
                failed: 1,
            },
        ];
        for kind in kinds {
            let record = FaultRecord {
                at: SimTime::from_secs(1.5),
                kind,
            };
            let back = FaultRecord::from_value(&record.to_value()).unwrap();
            assert_eq!(back, record);
        }
    }

    #[test]
    fn sim_report_roundtrips_bit_identically() {
        let report = SimReport {
            delays_by_group: [vec![0.0, 2.25, 1e-3], vec![4.0], vec![]],
            tasks_completed: 3,
            tasks_running_at_end: 1,
            tasks_pending_at_end: 2,
            tasks_unschedulable: 0,
            tasks_failed: 4,
            total_energy_wh: 123.456,
            energy_cost_dollars: 2.5,
            switch_count: 4,
            switch_cost_dollars: 0.125,
            migrations: 9,
            evictions: 1,
            faults: vec![FaultRecord {
                at: SimTime::from_secs(10.0),
                kind: FaultRecordKind::SlowBootEnd,
            }],
            degradations: vec![DegradationEvent {
                at: SimTime::from_secs(20.0),
                kind: DegradationKind::LpGreedyFallback,
                detail: "pivot budget".to_owned(),
            }],
            series: vec![TimePoint {
                time: SimTime::from_secs(60.0),
                power_watts: 17.5,
                active_per_type: vec![1, 2, 3],
                used_per_type: vec![0, 1, 2],
                pending_tasks: 5,
            }],
        };
        let text = serde_json::to_string(&report).unwrap();
        let back: SimReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn wrong_group_count_rejected() {
        let mut v = SimReport {
            delays_by_group: [vec![], vec![], vec![]],
            tasks_completed: 0,
            tasks_running_at_end: 0,
            tasks_pending_at_end: 0,
            tasks_unschedulable: 0,
            tasks_failed: 0,
            total_energy_wh: 0.0,
            energy_cost_dollars: 0.0,
            switch_count: 0,
            switch_cost_dollars: 0.0,
            migrations: 0,
            evictions: 0,
            faults: Vec::new(),
            degradations: Vec::new(),
            series: Vec::new(),
        }
        .to_value();
        if let Value::Object(map) = &mut v {
            map.insert(
                "delays_by_group".to_owned(),
                Value::Array(vec![Value::Array(vec![])]),
            );
        }
        assert!(SimReport::from_value(&v).is_err());
    }

    #[test]
    fn unknown_variant_rejected() {
        assert!(DegradationKind::from_value(&Value::String("Nope".into())).is_err());
        assert!(FaultKind::from_value(&Value::String("MachineCrash".into())).is_err());
    }
}

//! The dynamic-capacity-provisioning hook.

use harmony_model::{SimTime, Task};

use crate::cluster::Cluster;

/// What a controller observes at each control period.
#[derive(Debug)]
pub struct Observation<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The cluster (machine states, utilizations, energy so far).
    pub cluster: &'a Cluster,
    /// Tasks waiting to be scheduled, in priority-then-arrival order.
    pub pending: &'a [Task],
    /// Tasks that arrived during the last control period, in arrival
    /// order (the per-class arrival-rate monitor input).
    pub arrived_last_period: &'a [Task],
    /// Tasks currently executing on machines (their containers are
    /// occupied and their hosts cannot be powered off).
    pub running: &'a [Task],
}

/// A capacity-provisioning decision: the number of machines of each type
/// that should be active (on or booting) after this control period.
///
/// The engine realizes the target by booting powered-off machines or
/// powering off idle ones; machines running tasks are drained naturally
/// (never killed), so the realized count may lag the target downwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlDecision {
    /// Target active machine count per type, indexed by
    /// [`harmony_model::MachineTypeId`]. Values are clamped to the
    /// per-type population.
    pub target_active: Vec<usize>,
    /// Whether the engine may migrate running tasks off machines in
    /// excess of the target so they can power down — Algorithm 1's
    /// re-packing step ("perform re-packing, turn off other machines").
    /// Only CBS requests this; CBP and the baseline leave placements
    /// alone.
    pub repack: bool,
}

impl ControlDecision {
    /// Keep everything as it is (an empty decision).
    pub fn unchanged(cluster: &Cluster) -> Self {
        ControlDecision { target_active: cluster.active_per_type(), repack: false }
    }

    /// A plain capacity target without re-packing.
    pub fn targets(target_active: Vec<usize>) -> Self {
        ControlDecision { target_active, repack: false }
    }

    /// A capacity target with re-packing enabled.
    pub fn targets_with_repack(target_active: Vec<usize>) -> Self {
        ControlDecision { target_active, repack: true }
    }
}

/// A dynamic capacity provisioner, invoked once per control period.
pub trait Controller: std::fmt::Debug {
    /// How often [`Controller::decide`] runs.
    fn control_period(&self) -> harmony_model::SimDuration;

    /// Makes a provisioning decision from the current observation.
    fn decide(&mut self, observation: &Observation<'_>) -> ControlDecision;
}

/// A controller that never changes anything — used for open-loop replays
/// such as the Fig. 4 scheduling-delay analysis on a fully-on cluster.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullController;

impl Controller for NullController {
    fn control_period(&self) -> harmony_model::SimDuration {
        harmony_model::SimDuration::from_hours(1.0)
    }

    fn decide(&mut self, observation: &Observation<'_>) -> ControlDecision {
        ControlDecision::unchanged(observation.cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_model::MachineCatalog;

    #[test]
    fn null_controller_preserves_state() {
        let cluster = Cluster::new(MachineCatalog::table2().scaled(1000));
        let obs = Observation {
            now: SimTime::ZERO,
            cluster: &cluster,
            pending: &[],
            arrived_last_period: &[],
            running: &[],
        };
        let d = NullController.decide(&obs);
        assert_eq!(d.target_active, vec![0, 0, 0, 0]);
        assert_eq!(d, ControlDecision::unchanged(&cluster));
        assert!(NullController.control_period().as_secs() > 0.0);
    }
}

//! The dynamic-capacity-provisioning hook.

use harmony_model::{SimTime, Task};
use serde::{Deserialize, Serialize};

use crate::cluster::Cluster;

/// A borrowed, index-based view over a subset of the trace's task arena.
///
/// The engine stores every task once, in a flat slice, and hands
/// controllers *views* — either the whole slice (`dense`) or a list of
/// indices into it (`indexed`). This removes the per-control-period
/// `Vec<Task>` clones the seed engine paid for pending/running handoff:
/// at paper scale those clones alone dominated the control path.
///
/// The view is `Copy` and iterates `&Task` in the order of its index
/// list, so `for task in observation.pending { … }` call sites read
/// exactly as before.
#[derive(Debug, Clone, Copy)]
pub struct TaskView<'a> {
    tasks: &'a [Task],
    idxs: Option<&'a [u32]>,
}

impl<'a> TaskView<'a> {
    /// A view over a whole slice, in slice order.
    pub fn dense(tasks: &'a [Task]) -> Self {
        TaskView { tasks, idxs: None }
    }

    /// A view over `idxs` positions of the task arena, in `idxs` order.
    ///
    /// Indices out of range panic on iteration, like slice indexing.
    pub fn indexed(tasks: &'a [Task], idxs: &'a [u32]) -> Self {
        TaskView {
            tasks,
            idxs: Some(idxs),
        }
    }

    /// Number of tasks in the view.
    pub fn len(&self) -> usize {
        match self.idxs {
            Some(idxs) => idxs.len(),
            None => self.tasks.len(),
        }
    }

    /// `true` if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the viewed tasks in view order.
    pub fn iter(&self) -> TaskViewIter<'a> {
        TaskViewIter {
            view: *self,
            pos: 0,
        }
    }
}

impl Default for TaskView<'_> {
    fn default() -> Self {
        TaskView::dense(&[])
    }
}

/// Iterator over a [`TaskView`].
#[derive(Debug, Clone)]
pub struct TaskViewIter<'a> {
    view: TaskView<'a>,
    pos: usize,
}

impl<'a> Iterator for TaskViewIter<'a> {
    type Item = &'a Task;

    fn next(&mut self) -> Option<&'a Task> {
        let item = match self.view.idxs {
            Some(idxs) => &self.view.tasks[*idxs.get(self.pos)? as usize],
            None => self.view.tasks.get(self.pos)?,
        };
        self.pos += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.view.len().saturating_sub(self.pos);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for TaskViewIter<'_> {}

impl<'a> IntoIterator for TaskView<'a> {
    type Item = &'a Task;
    type IntoIter = TaskViewIter<'a>;

    fn into_iter(self) -> TaskViewIter<'a> {
        self.iter()
    }
}

impl<'a> IntoIterator for &TaskView<'a> {
    type Item = &'a Task;
    type IntoIter = TaskViewIter<'a>;

    fn into_iter(self) -> TaskViewIter<'a> {
        self.iter()
    }
}

/// What a controller observes at each control period.
#[derive(Debug)]
pub struct Observation<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The cluster (machine states, utilizations, energy so far).
    pub cluster: &'a Cluster,
    /// Tasks waiting to be scheduled, in priority-then-arrival order.
    pub pending: TaskView<'a>,
    /// Tasks that arrived during the last control period, in arrival
    /// order (the per-class arrival-rate monitor input).
    pub arrived_last_period: TaskView<'a>,
    /// Tasks currently executing on machines (their containers are
    /// occupied and their hosts cannot be powered off), in task-arena
    /// order.
    pub running: TaskView<'a>,
}

/// A capacity-provisioning decision: the number of machines of each type
/// that should be active (on or booting) after this control period.
///
/// The engine realizes the target by booting powered-off machines or
/// powering off idle ones; machines running tasks are drained naturally
/// (never killed), so the realized count may lag the target downwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlDecision {
    /// Target active machine count per type, indexed by
    /// [`harmony_model::MachineTypeId`]. Values are clamped to the
    /// per-type population.
    pub target_active: Vec<usize>,
    /// Whether the engine may migrate running tasks off machines in
    /// excess of the target so they can power down — Algorithm 1's
    /// re-packing step ("perform re-packing, turn off other machines").
    /// Only CBS requests this; CBP and the baseline leave placements
    /// alone.
    pub repack: bool,
}

impl ControlDecision {
    /// Keep everything as it is (an empty decision).
    pub fn unchanged(cluster: &Cluster) -> Self {
        ControlDecision {
            target_active: cluster.active_per_type(),
            repack: false,
        }
    }

    /// A plain capacity target without re-packing.
    pub fn targets(target_active: Vec<usize>) -> Self {
        ControlDecision {
            target_active,
            repack: false,
        }
    }

    /// A capacity target with re-packing enabled.
    pub fn targets_with_repack(target_active: Vec<usize>) -> Self {
        ControlDecision {
            target_active,
            repack: true,
        }
    }
}

/// The forecast quality tier a controller's predictor ran at: the
/// graceful-degradation ladder steps down this list when a higher tier
/// produces unusable output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ForecastTier {
    /// Full ARIMA fit (the paper's predictor).
    Arima,
    /// Moving-average fallback.
    MovingAverage,
    /// Last recorded observation, repeated.
    LastObservation,
}

/// What part of the control pipeline degraded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DegradationKind {
    /// A class's forecast fell back below the tier its history entitles
    /// (non-finite or outlier output from the higher tier).
    ForecastFallback {
        /// Dense class index.
        class: usize,
        /// The tier actually used.
        tier: ForecastTier,
    },
    /// The provisioning LP failed; the previous plan was re-actuated.
    LpReusedPreviousPlan,
    /// The provisioning LP failed with no previous plan to reuse; a
    /// greedy per-class sizing was actuated instead.
    LpGreedyFallback,
    /// The control step failed outright and capacity was held unchanged.
    ControlHold,
}

/// One degradation a controller survived, surfaced in
/// [`crate::SimReport::degradations`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationEvent {
    /// When the degradation occurred (the control tick's time).
    pub at: SimTime,
    /// Which rung of the ladder was taken.
    pub kind: DegradationKind,
    /// Human-readable cause (e.g. the underlying error message).
    pub detail: String,
}

/// A dynamic capacity provisioner, invoked once per control period.
pub trait Controller: std::fmt::Debug {
    /// How often [`Controller::decide`] runs.
    fn control_period(&self) -> harmony_model::SimDuration;

    /// Makes a provisioning decision from the current observation.
    fn decide(&mut self, observation: &Observation<'_>) -> ControlDecision;

    /// Drains the degradation events accumulated since the last call.
    /// The engine collects these after every [`Controller::decide`] into
    /// the run's [`crate::SimReport`]. Controllers without a degradation
    /// ladder keep the default (no events).
    fn take_degradations(&mut self) -> Vec<DegradationEvent> {
        Vec::new()
    }
}

/// A controller that never changes anything — used for open-loop replays
/// such as the Fig. 4 scheduling-delay analysis on a fully-on cluster.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullController;

impl Controller for NullController {
    fn control_period(&self) -> harmony_model::SimDuration {
        harmony_model::SimDuration::from_hours(1.0)
    }

    fn decide(&mut self, observation: &Observation<'_>) -> ControlDecision {
        ControlDecision::unchanged(observation.cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_model::MachineCatalog;

    #[test]
    fn null_controller_preserves_state() {
        let cluster = Cluster::new(MachineCatalog::table2().scaled(1000));
        let obs = Observation {
            now: SimTime::ZERO,
            cluster: &cluster,
            pending: TaskView::default(),
            arrived_last_period: TaskView::default(),
            running: TaskView::default(),
        };
        let d = NullController.decide(&obs);
        assert_eq!(d.target_active, vec![0, 0, 0, 0]);
        assert_eq!(d, ControlDecision::unchanged(&cluster));
        assert!(NullController.control_period().as_secs() > 0.0);
    }
}

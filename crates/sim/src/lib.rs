//! Discrete-event heterogeneous-cluster simulator for HARMONY.
//!
//! The paper evaluates HARMONY "through simulations using real traces
//! from Google's compute clusters" on the Table II machine mix. This
//! crate is that substrate, rebuilt:
//!
//! * [`Cluster`] — a population of machines instantiated from a
//!   [`harmony_model::MachineCatalog`], each with an on/boot/off
//!   lifecycle, per-machine utilization, and lazily-integrated energy
//!   metering under the linear power model of Eq. (7).
//! * [`Scheduler`] — pluggable task-placement policies ([`FirstFit`],
//!   [`BestFit`], [`EnergyEfficientFirstFit`]); controllers that need to
//!   coordinate with scheduling (the paper's CBS) wrap these with quota
//!   logic in the `harmony` crate.
//! * [`Controller`] — the dynamic-capacity-provisioning hook: once per
//!   control period it observes the cluster and pending work and sets a
//!   per-type active-machine target.
//! * [`Simulation`] — the event loop: task arrivals from a
//!   [`harmony_trace::Trace`], task completions, machine boot
//!   completions, controller ticks, and metric samples; produces a
//!   [`SimReport`] with scheduling-delay distributions per priority
//!   group, energy/cost totals and time series (Figs. 3, 4, 21–26).
//!
//! # Examples
//!
//! ```
//! use harmony_model::MachineCatalog;
//! use harmony_sim::{FirstFit, Simulation, SimulationConfig};
//! use harmony_trace::{TraceConfig, TraceGenerator};
//!
//! let trace = TraceGenerator::new(TraceConfig::small()).generate();
//! let catalog = MachineCatalog::table2().scaled(100); // 1% scale
//! let config = SimulationConfig::new(catalog).all_machines_on();
//! let report = Simulation::new(config, &trace, Box::new(FirstFit)).run();
//! assert_eq!(
//!     report.tasks_completed + report.tasks_running_at_end
//!         + report.tasks_pending_at_end + report.tasks_unschedulable,
//!     trace.len(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod calendar;
mod cluster;
mod controller;
mod engine;
mod faults;
mod index;
mod machine;
mod metrics;
mod scheduler;
mod serde_impls;

pub use cluster::Cluster;
pub use controller::{
    ControlDecision, Controller, DegradationEvent, DegradationKind, ForecastTier, NullController,
    Observation, TaskView, TaskViewIter,
};
pub use engine::{EngineMode, Simulation, SimulationConfig};
pub use faults::{
    FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultRecord, FaultRecordKind, SCENARIOS,
};
pub use machine::{Machine, MachineId, MachineState};
pub use metrics::{DelayStats, SimReport, TimePoint};
pub use scheduler::{BestFit, EnergyEfficientFirstFit, FirstFit, Scheduler};

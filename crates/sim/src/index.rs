//! Incremental cluster-state index: per-type max-free segment trees.
//!
//! At paper scale (Table II: 10,000 machines) the engine cannot afford a
//! full machine scan per placement attempt or per drain pass. This index
//! maintains, incrementally under every machine mutation:
//!
//! * one **segment tree per machine type** whose leaves hold the free
//!   capacity of `On` machines (a sentinel below zero otherwise) and
//!   whose internal nodes hold the component-wise maximum — so "does any
//!   machine of this type fit the demand?" is the O(1) root and
//!   "lowest-id machine that fits" is an O(log n) left-first descent;
//! * per-type **active** (on or booting) and **busy** (running at least
//!   one task) machine counts, so the per-control-tick
//!   [`crate::Cluster::active_per_type`]/[`crate::Cluster::used_per_type`]
//!   summaries are O(types) instead of O(machines).
//!
//! Determinism: the descent prunes with a small epsilon margin (strictly
//! more permissive than [`crate::Machine::can_place`]'s own tolerance)
//! and re-verifies `can_place` exactly at each leaf, so it returns
//! *exactly* the machine a lowest-id linear scan would — the reference
//! and indexed engines produce byte-identical reports (see
//! `tests/determinism.rs` and the cross-engine property suite in
//! `crates/bench/tests/engine_equivalence.rs`).

use harmony_model::Resources;

use crate::machine::{Machine, MachineId};

/// Leaf value for machines that cannot host anything (off, booting, or
/// failed): strictly below any real demand even after the pruning
/// epsilon, so such leaves are never descended into.
const SENTINEL: Resources = Resources {
    cpu: -1.0,
    mem: -1.0,
};

/// Pruning margin for internal nodes. `Machine::can_place` tolerates
/// `1e-9` of accumulated float error; pruning must never be *stricter*
/// than the leaf test, so internal comparisons get a wider margin. A
/// false positive only costs a wasted descent; a false negative would
/// change placement decisions.
const PRUNE_EPS: f64 = 1e-6;

#[inline]
fn may_fit(demand: Resources, node_max: Resources) -> bool {
    demand.cpu <= node_max.cpu + PRUNE_EPS && demand.mem <= node_max.mem + PRUNE_EPS
}

/// A max segment tree over one machine type's contiguous id range.
#[derive(Debug, Clone)]
struct TypeTree {
    /// First machine id of this type (ids are contiguous per type).
    base: usize,
    /// Number of machines of this type.
    n: usize,
    /// Leaf capacity (next power of two ≥ `n`, minimum 1).
    size: usize,
    /// 1-based heap layout: `seg[size + i]` is machine `base + i`.
    seg: Vec<Resources>,
}

impl TypeTree {
    fn new(base: usize, n: usize) -> Self {
        let size = n.next_power_of_two().max(1);
        TypeTree {
            base,
            n,
            size,
            seg: vec![SENTINEL; 2 * size],
        }
    }

    /// Updates one leaf and its ancestor maxima.
    fn set(&mut self, global_id: usize, value: Resources) {
        let mut p = self.size + (global_id - self.base);
        self.seg[p] = value;
        p /= 2;
        while p >= 1 {
            self.seg[p] = self.seg[2 * p].max(self.seg[2 * p + 1]);
            if p == 1 {
                break;
            }
            p /= 2;
        }
    }

    /// Component-wise max free over `On` machines of this type, clamped
    /// at zero — exactly the fold `ZERO.max(free_1).max(free_2)…` the
    /// reference drain pre-filter computes (sentinels vanish under the
    /// clamp; an all-off type yields `ZERO`).
    fn max_free(&self) -> Resources {
        self.seg[1].max(Resources::ZERO)
    }

    /// Lowest-id machine of this type where `can_place(demand)` holds.
    ///
    /// Left-first depth-first descent over subtrees whose max may fit
    /// the demand; each candidate leaf is re-verified against the real
    /// machine, so the result equals a linear `iter().find(can_place)`.
    fn first_fit(&self, machines: &[Machine], demand: Resources) -> Option<MachineId> {
        if self.n == 0 || !may_fit(demand, self.seg[1]) {
            return None;
        }
        // Explicit stack: at most one deferred right sibling per level,
        // so a fixed array avoids allocating in the hot loop.
        let mut stack = [0usize; 64];
        let mut sp = 0usize;
        stack[sp] = 1;
        sp += 1;
        while sp > 0 {
            sp -= 1;
            let node = stack[sp];
            if !may_fit(demand, self.seg[node]) {
                continue;
            }
            if node >= self.size {
                let idx = node - self.size;
                if idx < self.n {
                    let m = &machines[self.base + idx];
                    if m.can_place(demand) {
                        return Some(m.id());
                    }
                }
                continue;
            }
            debug_assert!(sp + 2 <= stack.len(), "descent deeper than stack");
            stack[sp] = 2 * node + 1; // right — visited second
            stack[sp + 1] = 2 * node; // left — popped first
            sp += 2;
        }
        None
    }
}

/// The incremental index over a whole cluster. Owned by
/// [`crate::Cluster`] and refreshed via [`FreeIndex::touch`] after every
/// machine mutation.
#[derive(Debug, Clone)]
pub(crate) struct FreeIndex {
    trees: Vec<TypeTree>,
    active: Vec<usize>,
    busy: Vec<usize>,
    /// Per-machine cached flags (bit 0: active, bit 1: busy) so counter
    /// maintenance is a diff, not a rescan.
    flags: Vec<u8>,
    /// Machine id → type index, for O(1) touch routing.
    type_of: Vec<usize>,
}

impl FreeIndex {
    /// Builds the index from the current machine population. `by_type`
    /// holds the contiguous id ranges, in type order.
    pub(crate) fn new(machines: &[Machine], by_type: &[Vec<MachineId>]) -> Self {
        let mut trees = Vec::with_capacity(by_type.len());
        let mut type_of = vec![0usize; machines.len()];
        for (ty, ids) in by_type.iter().enumerate() {
            let base = ids.first().map_or(0, |id| id.0);
            trees.push(TypeTree::new(base, ids.len()));
            for id in ids {
                type_of[id.0] = ty;
            }
        }
        let mut index = FreeIndex {
            trees,
            active: vec![0; by_type.len()],
            busy: vec![0; by_type.len()],
            flags: vec![0; machines.len()],
            type_of,
        };
        for m in machines {
            index.touch(m);
        }
        index
    }

    /// Re-reads one machine's state into the index (leaf value and
    /// active/busy counters). Must be called after *every* mutation of
    /// the machine; [`crate::Cluster`] funnels all mutations through its
    /// methods, each of which does so.
    pub(crate) fn touch(&mut self, m: &Machine) {
        let id = m.id().0;
        let ty = self.type_of[id];
        let new_flags = u8::from(m.is_active()) | (u8::from(m.running_tasks() > 0) << 1);
        let old_flags = self.flags[id];
        if (old_flags ^ new_flags) & 1 != 0 {
            if new_flags & 1 != 0 {
                self.active[ty] += 1;
            } else {
                self.active[ty] -= 1;
            }
        }
        if (old_flags ^ new_flags) & 2 != 0 {
            if new_flags & 2 != 0 {
                self.busy[ty] += 1;
            } else {
                self.busy[ty] -= 1;
            }
        }
        self.flags[id] = new_flags;
        let leaf = if m.is_on() { m.free() } else { SENTINEL };
        self.trees[ty].set(id, leaf);
    }

    /// Per-type active (on or booting) machine counts.
    pub(crate) fn active_per_type(&self) -> Vec<usize> {
        self.active.clone()
    }

    /// Per-type counts of machines running at least one task.
    pub(crate) fn busy_per_type(&self) -> Vec<usize> {
        self.busy.clone()
    }

    /// Component-wise max free capacity over `On` machines of one type,
    /// clamped at zero.
    pub(crate) fn max_free_of_type(&self, ty: usize) -> Resources {
        self.trees[ty].max_free()
    }

    /// Lowest-id machine of type `ty` that can place `demand`.
    pub(crate) fn first_fit_of_type(
        &self,
        machines: &[Machine],
        ty: usize,
        demand: Resources,
    ) -> Option<MachineId> {
        self.trees[ty].first_fit(machines, demand)
    }

    /// Lowest-id machine cluster-wide that can place `demand`. Machine
    /// ids are contiguous per type in type order, so scanning types in
    /// order preserves global id order.
    pub(crate) fn first_fit(&self, machines: &[Machine], demand: Resources) -> Option<MachineId> {
        self.trees
            .iter()
            .find_map(|tree| tree.first_fit(machines, demand))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use harmony_model::{MachineCatalog, MachineTypeId, SimTime};

    /// Compares every index query against the linear-scan truth.
    fn assert_index_matches(c: &Cluster) {
        let types = c.catalog().len();
        // Counters.
        let active_scan: Vec<usize> = (0..types)
            .map(|ty| {
                c.machines_of_type(MachineTypeId(ty))
                    .iter()
                    .filter(|id| c.machine(**id).is_active())
                    .count()
            })
            .collect();
        assert_eq!(c.active_per_type(), active_scan);
        let busy_scan: Vec<usize> = (0..types)
            .map(|ty| {
                c.machines_of_type(MachineTypeId(ty))
                    .iter()
                    .filter(|id| c.machine(**id).running_tasks() > 0)
                    .count()
            })
            .collect();
        assert_eq!(c.used_per_type(), busy_scan);
        // Max free and first fit, across a spread of demands.
        for ty in 0..types {
            let mut max = Resources::ZERO;
            for &id in c.machines_of_type(MachineTypeId(ty)) {
                let m = c.machine(id);
                if m.is_on() {
                    max = max.max(m.free());
                }
            }
            assert_eq!(c.max_free_of_type(MachineTypeId(ty)), max);
        }
        for demand in [
            Resources::new(0.01, 0.01),
            Resources::new(0.05, 0.02),
            Resources::new(0.2, 0.2),
            Resources::new(0.5, 0.25),
            Resources::new(1.0, 1.0),
        ] {
            let scan = c.machines().iter().find(|m| m.can_place(demand)).map(|m| m.id());
            assert_eq!(c.first_fit_machine(demand), scan, "demand {demand:?}");
            for ty in 0..types {
                let ty = MachineTypeId(ty);
                let scan = c
                    .machines_of_type(ty)
                    .iter()
                    .find(|id| c.machine(**id).can_place(demand))
                    .copied();
                assert_eq!(c.first_fit_machine_of_type(ty, demand), scan);
            }
        }
    }

    #[test]
    fn index_tracks_mutations_exactly() {
        let mut c = Cluster::new(MachineCatalog::table2().scaled(200)); // 35/7/5/2
        c.enable_index();
        assert_index_matches(&c);
        // Power a mixed population on.
        let mut ready_times = Vec::new();
        for ty in 0..4 {
            let (ids, ready) = c.power_on(MachineTypeId(ty), 3, SimTime::ZERO);
            ready_times.push((ids, ready));
        }
        assert_index_matches(&c);
        for (ids, ready) in &ready_times {
            for id in ids {
                c.boot_complete(*id, *ready);
            }
        }
        assert_index_matches(&c);
        let t = SimTime::from_secs(500.0);
        // Allocate, release, migrate.
        let ids = c.machines_of_type(MachineTypeId(0)).to_vec();
        assert!(c.allocate(ids[0], Resources::new(0.05, 0.04), t));
        assert!(c.allocate(ids[1], Resources::new(0.02, 0.02), t));
        assert_index_matches(&c);
        assert!(c.migrate(ids[1], ids[2], Resources::new(0.02, 0.02), t));
        assert_index_matches(&c);
        c.release(ids[0], Resources::new(0.05, 0.04), t);
        assert_index_matches(&c);
        // Crash / recover / restart.
        let until = t + harmony_model::SimDuration::from_secs(600.0);
        assert!(c.crash_machine(ids[2], t, until));
        assert_index_matches(&c);
        assert!(c.recover_machine(ids[2], until));
        assert_index_matches(&c);
        let ready = c.restart_machine(ids[2], until).unwrap();
        assert_index_matches(&c);
        assert!(c.boot_complete(ids[2], ready));
        assert_index_matches(&c);
        // Power down.
        assert!(c.power_off_idle(MachineTypeId(0), 2, ready) > 0);
        assert_index_matches(&c);
    }

    #[test]
    fn indexed_queries_match_unindexed_cluster() {
        let build = |indexed: bool| {
            let mut c = Cluster::new(MachineCatalog::table2().scaled(500)); // 14/3/2/1
            if indexed {
                c.enable_index();
            }
            for ty in 0..4 {
                let (ids, ready) = c.power_on(MachineTypeId(ty), usize::MAX, SimTime::ZERO);
                for id in ids {
                    c.boot_complete(id, ready);
                }
            }
            c
        };
        let plain = build(false);
        let indexed = build(true);
        for demand in [Resources::new(0.05, 0.05), Resources::new(0.3, 0.2)] {
            assert_eq!(
                plain.first_fit_machine(demand),
                indexed.first_fit_machine(demand)
            );
        }
        assert_eq!(plain.active_per_type(), indexed.active_per_type());
        assert_eq!(plain.used_per_type(), indexed.used_per_type());
        for ty in 0..4 {
            let ty = MachineTypeId(ty);
            assert_eq!(plain.max_free_of_type(ty), indexed.max_free_of_type(ty));
        }
    }
}

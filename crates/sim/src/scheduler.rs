//! Pluggable task-placement policies.

use harmony_model::Task;

use crate::cluster::Cluster;
use crate::machine::MachineId;

/// A task scheduler: picks a machine for a task, or `None` to leave it
/// queued.
///
/// Implementations must only return machines where
/// [`crate::Machine::can_place`] holds; the engine re-checks and treats a
/// failed placement as "leave queued".
///
/// The `harmony` crate wraps these policies with per-(machine-type,
/// task-class) quota bookkeeping to realize the paper's CBS/CBP
/// coordination, so the trait also receives placement/completion
/// callbacks.
pub trait Scheduler: std::fmt::Debug {
    /// Chooses a machine for `task`, or `None` if nothing suitable is
    /// available right now.
    fn place(&mut self, task: &Task, cluster: &Cluster) -> Option<MachineId>;

    /// Invoked after the engine commits a placement.
    fn on_placed(&mut self, _task: &Task, _machine: MachineId, _cluster: &Cluster) {}

    /// Invoked when a task finishes and its resources are released.
    fn on_finished(&mut self, _task: &Task, _machine: MachineId, _cluster: &Cluster) {}
}

/// First-Fit: the first `On` machine (in id order) with room.
///
/// Machine ids are contiguous per type, so id order is also "type 0
/// first" order — the classic heterogeneity-oblivious scan. Runs in
/// O(log machines) on an indexed cluster (identical machine choice —
/// see [`Cluster::first_fit_machine`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFit;

impl Scheduler for FirstFit {
    fn place(&mut self, task: &Task, cluster: &Cluster) -> Option<MachineId> {
        cluster.first_fit_machine(task.demand)
    }
}

/// Best-Fit: the `On` machine with room whose remaining free capacity
/// (sum over dimensions, after placement) is smallest — packs tightly.
///
/// Inherently a full scan (the objective ranks every feasible machine);
/// not accelerated by the cluster index.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFit;

impl Scheduler for BestFit {
    fn place(&mut self, task: &Task, cluster: &Cluster) -> Option<MachineId> {
        let mut best: Option<(MachineId, f64)> = None;
        for m in cluster.machines() {
            if !m.can_place(task.demand) {
                continue;
            }
            let leftover = (m.free() - task.demand).sum_components();
            if best.is_none_or(|(_, b)| leftover < b) {
                best = Some((m.id(), leftover));
            }
        }
        best.map(|(id, _)| id)
    }
}

/// First-Fit over machine types sorted by decreasing energy efficiency
/// (capacity per peak watt) — the placement half of the
/// heterogeneity-oblivious baseline, which provisions and fills
/// "greedily ... in decreasing order of energy efficiency".
#[derive(Debug, Clone)]
pub struct EnergyEfficientFirstFit {
    order: Vec<harmony_model::MachineTypeId>,
}

impl EnergyEfficientFirstFit {
    /// Builds the policy for a cluster's catalog.
    pub fn new(cluster: &Cluster) -> Self {
        EnergyEfficientFirstFit {
            order: cluster.catalog().by_energy_efficiency(),
        }
    }
}

impl Scheduler for EnergyEfficientFirstFit {
    fn place(&mut self, task: &Task, cluster: &Cluster) -> Option<MachineId> {
        self.order
            .iter()
            .find_map(|&ty| cluster.first_fit_machine_of_type(ty, task.demand))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_model::{
        JobId, MachineCatalog, MachineTypeId, Priority, Resources, SchedulingClass, SimDuration,
        SimTime, TaskId,
    };

    fn cluster_all_on() -> Cluster {
        let mut c = Cluster::new(MachineCatalog::table2().scaled(1000)); // 7/2/1/1
        for ty in 0..4 {
            let (ids, ready) = c.power_on(MachineTypeId(ty), usize::MAX, SimTime::ZERO);
            for id in ids {
                c.boot_complete(id, ready);
            }
        }
        c
    }

    fn task(cpu: f64, mem: f64) -> Task {
        Task {
            id: TaskId(0),
            job: JobId(0),
            arrival: SimTime::ZERO,
            duration: SimDuration::from_secs(10.0),
            demand: Resources::new(cpu, mem),
            priority: Priority::new(0).unwrap(),
            sched_class: SchedulingClass::BATCH,
        }
    }

    #[test]
    fn first_fit_takes_lowest_id_with_room() {
        let mut c = cluster_all_on();
        let t = task(0.05, 0.05);
        let mut ff = FirstFit;
        let id = ff.place(&t, &c).unwrap();
        assert_eq!(id, MachineId(0));
        // Fill machine 0 (R210: 0.0833 cpu, 0.0625 mem) so it no longer fits.
        assert!(c.allocate(MachineId(0), Resources::new(0.05, 0.05), SimTime::ZERO));
        let id2 = ff.place(&t, &c).unwrap();
        assert_eq!(id2, MachineId(1));
    }

    #[test]
    fn first_fit_skips_small_types_for_big_tasks() {
        let mut ff = FirstFit;
        let c = cluster_all_on();
        // 0.2 CPU doesn't fit an R210 (0.083) or R515 (0.25 cpu? yes it
        // does fit R515). Use 0.3 cpu: only DL385 (0.5) and DL585 fit.
        let t = task(0.3, 0.2);
        let id = ff.place(&t, &c).unwrap();
        assert_eq!(c.machine(id).type_id(), MachineTypeId(2));
    }

    #[test]
    fn best_fit_packs_tightest_machine() {
        let c = cluster_all_on();
        let mut bf = BestFit;
        // 0.2/0.2 fits R515 (0.25/0.5, leftover 0.35), DL385 (0.5/0.25,
        // leftover 0.35), DL585 (1/1, leftover 1.6). Tie between R515 and
        // DL385; either acceptable — must not be DL585.
        let id = bf.place(&task(0.2, 0.2), &c).unwrap();
        assert_ne!(c.machine(id).type_id(), MachineTypeId(3));
    }

    #[test]
    fn energy_efficient_prefers_efficient_type() {
        let c = cluster_all_on();
        let mut ee = EnergyEfficientFirstFit::new(&c);
        let t = task(0.01, 0.01);
        let id = ee.place(&t, &c).unwrap();
        let chosen = c.machine(id).type_id();
        let best = c.catalog().by_energy_efficiency()[0];
        assert_eq!(chosen, best);
    }

    #[test]
    fn all_return_none_when_nothing_fits() {
        let c = Cluster::new(MachineCatalog::table2().scaled(1000)); // all off
        let t = task(0.01, 0.01);
        assert!(FirstFit.place(&t, &c).is_none());
        assert!(BestFit.place(&t, &c).is_none());
        assert!(EnergyEfficientFirstFit::new(&c).place(&t, &c).is_none());
    }
}

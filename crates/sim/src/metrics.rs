//! Simulation outputs: delay distributions, energy, time series.

use harmony_model::{PriorityGroup, SimTime};
use serde::{Deserialize, Serialize};

use crate::controller::DegradationEvent;
use crate::faults::FaultRecord;

/// One sampled point of cluster state over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimePoint {
    /// Sample time.
    pub time: SimTime,
    /// Instantaneous cluster draw in watts.
    pub power_watts: f64,
    /// Active (on or booting) machines per type.
    pub active_per_type: Vec<usize>,
    /// Machines running at least one task, per type.
    pub used_per_type: Vec<usize>,
    /// Tasks waiting to be scheduled.
    pub pending_tasks: usize,
}

/// Summary statistics of a scheduling-delay sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayStats {
    /// Number of scheduled tasks in the sample.
    pub count: usize,
    /// Mean delay in seconds.
    pub mean: f64,
    /// Median delay in seconds.
    pub p50: f64,
    /// 90th percentile in seconds.
    pub p90: f64,
    /// 95th percentile in seconds.
    pub p95: f64,
    /// 99th percentile in seconds.
    pub p99: f64,
    /// Maximum observed delay in seconds.
    pub max: f64,
    /// Fraction of tasks scheduled immediately (zero delay).
    pub immediate_fraction: f64,
}

impl DelayStats {
    /// Computes stats from raw delays (seconds). Returns an all-zero
    /// record for an empty sample.
    pub fn from_delays(delays: &[f64]) -> Self {
        if delays.is_empty() {
            return DelayStats {
                count: 0,
                mean: 0.0,
                p50: 0.0,
                p90: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0.0,
                immediate_fraction: 0.0,
            };
        }
        let mut sorted = delays.to_vec();
        sorted.sort_by(f64::total_cmp);
        let q = |p: f64| -> f64 {
            let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[idx - 1]
        };
        let immediate = sorted.iter().filter(|&&d| d <= 1e-9).count();
        DelayStats {
            count: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: q(0.5),
            p90: q(0.9),
            p95: q(0.95),
            p99: q(0.99),
            max: sorted[sorted.len() - 1],
            immediate_fraction: immediate as f64 / sorted.len() as f64,
        }
    }
}

/// The full outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Raw scheduling delays (seconds) per priority group, indexed by
    /// [`PriorityGroup::index`], recorded when a task is placed.
    pub delays_by_group: [Vec<f64>; 3],
    /// Tasks that ran to completion within the simulated span.
    pub tasks_completed: usize,
    /// Tasks still running when the simulation ended.
    pub tasks_running_at_end: usize,
    /// Tasks still waiting when the simulation ended (their delays are
    /// censored and not part of `delays_by_group`).
    pub tasks_pending_at_end: usize,
    /// Tasks whose demand fits no machine type in the catalog.
    pub tasks_unschedulable: usize,
    /// Tasks dropped after exhausting their fault-eviction retry budget
    /// (zero without fault injection).
    pub tasks_failed: usize,
    /// Total energy in watt-hours.
    pub total_energy_wh: f64,
    /// Energy cost in dollars under the configured price curve
    /// (integrated at sample granularity).
    pub energy_cost_dollars: f64,
    /// Machine on/off transitions.
    pub switch_count: usize,
    /// Switching cost in dollars (`Σ q_m`, Eq. 9).
    pub switch_cost_dollars: f64,
    /// Task migrations performed by re-packing (Algorithm 1).
    pub migrations: usize,
    /// Tasks evicted by priority preemption.
    pub evictions: usize,
    /// Injected faults actually applied during the run, in time order.
    pub faults: Vec<FaultRecord>,
    /// Degradation-ladder events the controller survived (forecast
    /// fallbacks, LP plan reuse, greedy sizing, holds), in time order.
    pub degradations: Vec<DegradationEvent>,
    /// Sampled cluster state over time.
    pub series: Vec<TimePoint>,
}

impl SimReport {
    /// Delay statistics for one priority group.
    pub fn delay_stats(&self, group: PriorityGroup) -> DelayStats {
        DelayStats::from_delays(&self.delays_by_group[group.index()])
    }

    /// Delay statistics over all groups combined.
    pub fn delay_stats_overall(&self) -> DelayStats {
        let all: Vec<f64> = self.delays_by_group.iter().flatten().copied().collect();
        DelayStats::from_delays(&all)
    }

    /// Total cost: energy plus switching.
    pub fn total_cost_dollars(&self) -> f64 {
        self.energy_cost_dollars + self.switch_cost_dollars
    }

    /// Mean active machines over the sampled series.
    pub fn mean_active_machines(&self) -> f64 {
        if self.series.is_empty() {
            return 0.0;
        }
        let total: usize = self
            .series
            .iter()
            .map(|p| p.active_per_type.iter().sum::<usize>())
            .sum();
        total as f64 / self.series.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_stats_quantiles() {
        let delays: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = DelayStats::from_delays(&delays);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.immediate_fraction, 0.0);
    }

    #[test]
    fn delay_stats_immediate_fraction() {
        let s = DelayStats::from_delays(&[0.0, 0.0, 10.0, 0.0]);
        assert_eq!(s.immediate_fraction, 0.75);
    }

    #[test]
    fn delay_stats_empty() {
        let s = DelayStats::from_delays(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.p99, 0.0);
        assert_eq!(s.immediate_fraction, 0.0);
    }

    #[test]
    fn delay_stats_single_sample_is_every_quantile() {
        let s = DelayStats::from_delays(&[7.5]);
        assert_eq!(s.count, 1);
        // With one sample, ceil(p·1) clamps to rank 1 for every p.
        assert_eq!(s.p50, 7.5);
        assert_eq!(s.p90, 7.5);
        assert_eq!(s.p95, 7.5);
        assert_eq!(s.p99, 7.5);
        assert_eq!(s.max, 7.5);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.immediate_fraction, 0.0);
    }

    #[test]
    fn delay_stats_even_length_p50_takes_lower_median() {
        // n = 4: rank = ceil(0.5·4) = 2 → the lower of the two middle
        // samples, not their midpoint. This pins the convention so a
        // refactor to interpolation cannot slip in silently.
        let s = DelayStats::from_delays(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.p50, 2.0);
        // n = 2: rank = ceil(1.0) = 1 → the smaller sample.
        let s = DelayStats::from_delays(&[10.0, 20.0]);
        assert_eq!(s.p50, 10.0);
        assert_eq!(s.p90, 20.0, "rank ceil(1.8)=2");
    }

    #[test]
    fn report_rollups() {
        let report = SimReport {
            delays_by_group: [vec![0.0, 2.0], vec![4.0], vec![]],
            tasks_completed: 3,
            tasks_running_at_end: 0,
            tasks_pending_at_end: 0,
            tasks_unschedulable: 0,
            tasks_failed: 0,
            total_energy_wh: 100.0,
            energy_cost_dollars: 2.0,
            switch_count: 4,
            switch_cost_dollars: 0.5,
            migrations: 0,
            evictions: 0,
            faults: Vec::new(),
            degradations: Vec::new(),
            series: vec![
                TimePoint {
                    time: SimTime::ZERO,
                    power_watts: 10.0,
                    active_per_type: vec![2, 0],
                    used_per_type: vec![1, 0],
                    pending_tasks: 0,
                },
                TimePoint {
                    time: SimTime::from_secs(60.0),
                    power_watts: 20.0,
                    active_per_type: vec![4, 0],
                    used_per_type: vec![2, 0],
                    pending_tasks: 1,
                },
            ],
        };
        assert_eq!(report.total_cost_dollars(), 2.5);
        assert_eq!(report.mean_active_machines(), 3.0);
        assert_eq!(report.delay_stats(PriorityGroup::Gratis).count, 2);
        assert_eq!(report.delay_stats_overall().count, 3);
        assert_eq!(report.delay_stats(PriorityGroup::Production).count, 0);
    }
}

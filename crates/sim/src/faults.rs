//! Deterministic fault injection for robustness experiments.
//!
//! A [`FaultPlan`] is a seeded, reproducible schedule of disruptive
//! events — machine crashes, slow boots, forced task evictions, arrival
//! bursts — that the engine weaves into its discrete-event loop. The
//! same plan against the same trace always produces the same run, so
//! fault scenarios can be compared across controllers (the Section IX
//! variants) exactly like fault-free ones.
//!
//! Event timing lives in the plan; *victim selection* (which machine
//! crashes, which tasks are evicted) is resolved at fire time by a
//! [`FaultInjector`] seeded from the plan, because machine and task
//! state only exist once the simulation is running. Both halves are
//! driven by a local splitmix64 generator, keeping the crate free of
//! external RNG dependencies and the schedule stable across platforms.

use harmony_model::{MachineTypeId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::machine::MachineId;

/// A minimal splitmix64 PRNG: deterministic, seedable, dependency-free.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform usize in `[0, n)`. Returns 0 for `n == 0`.
    pub(crate) fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform f64 in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }
}

/// What kind of disruption a fault event causes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Crash one active machine (chosen at fire time, busy machines
    /// preferred): its running tasks are re-queued, the machine draws no
    /// power and hosts nothing until it recovers and reboots `down`
    /// later.
    MachineCrash {
        /// How long the machine stays failed before rebooting.
        down: SimDuration,
    },
    /// Multiply machine boot times by `factor` for `duration` — models
    /// degraded provisioning (image-server contention, PXE storms).
    SlowBoot {
        /// Boot-time multiplier (≥ 1 slows boots down).
        factor: f64,
        /// How long the slow window lasts.
        duration: SimDuration,
    },
    /// Forcibly evict up to `count` running tasks (lowest priority
    /// first); each is re-queued with its remaining work preserved.
    TaskEviction {
        /// Maximum number of tasks to evict.
        count: usize,
    },
    /// Compress all arrivals falling in `(at, at + window]` to fire at
    /// the event time — a thundering-herd burst. Applied to the trace
    /// before the run starts, so task conservation is unaffected.
    ArrivalBurst {
        /// Width of the arrival window pulled forward.
        window: SimDuration,
    },
    /// The spot market reclaims up to `count` active machines of one
    /// machine type (busy machines preferred, victims chosen at fire
    /// time). Each reclaimed machine behaves like a crash: residents are
    /// re-queued, the machine hosts nothing until it recovers `down`
    /// later. Emitted by `harmony-pricing`'s `SpotMarket` for types it
    /// prices as spot-eligible.
    SpotEviction {
        /// Machine type the market reclaims capacity from.
        machine_type: MachineTypeId,
        /// Maximum number of machines reclaimed by this event.
        count: usize,
        /// How long reclaimed machines stay unavailable.
        down: SimDuration,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A seeded, reproducible schedule of fault events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

/// Named scenarios accepted by [`FaultPlan::scenario`].
pub const SCENARIOS: [&str; 5] = [
    "crash-storm",
    "slow-boot",
    "eviction-wave",
    "arrival-burst",
    "mixed",
];

impl FaultPlan {
    /// An empty plan with the given victim-selection seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Adds one event (builder style). Events may be added in any order;
    /// the engine orders them by time.
    pub fn with_event(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// The victim-selection seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` if no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a named scenario spread over `span` (see [`SCENARIOS`]).
    /// Returns `None` for an unknown name.
    ///
    /// * `crash-storm` — a dozen machine crashes through the middle of
    ///   the run, each down for minutes.
    /// * `slow-boot` — two long windows where boots take 3–5× longer.
    /// * `eviction-wave` — four bursts of forced task evictions.
    /// * `arrival-burst` — two thundering-herd arrival compressions.
    /// * `mixed` — a lighter combination of all of the above.
    pub fn scenario(name: &str, seed: u64, span: SimDuration) -> Option<Self> {
        let mut rng = SplitMix64::new(seed ^ 0xFA17_FA17_FA17_FA17);
        let secs = span.as_secs();
        let at = |frac: f64| SimTime::from_secs(secs * frac);
        let mut plan = FaultPlan::new(seed);
        match name {
            "crash-storm" => {
                for _ in 0..12 {
                    plan = plan.with_event(
                        at(rng.range(0.10, 0.70)),
                        FaultKind::MachineCrash {
                            down: SimDuration::from_secs(rng.range(300.0, 1200.0)),
                        },
                    );
                }
            }
            "slow-boot" => {
                for _ in 0..2 {
                    plan = plan.with_event(
                        at(rng.range(0.10, 0.55)),
                        FaultKind::SlowBoot {
                            factor: rng.range(3.0, 5.0),
                            duration: SimDuration::from_secs(secs * 0.15),
                        },
                    );
                }
            }
            "eviction-wave" => {
                for _ in 0..4 {
                    plan = plan.with_event(
                        at(rng.range(0.15, 0.75)),
                        FaultKind::TaskEviction {
                            count: 20 + rng.below(31),
                        },
                    );
                }
            }
            "arrival-burst" => {
                for _ in 0..2 {
                    plan = plan.with_event(
                        at(rng.range(0.10, 0.60)),
                        FaultKind::ArrivalBurst {
                            window: SimDuration::from_secs(secs * 0.08),
                        },
                    );
                }
            }
            "mixed" => {
                for _ in 0..4 {
                    plan = plan.with_event(
                        at(rng.range(0.10, 0.70)),
                        FaultKind::MachineCrash {
                            down: SimDuration::from_secs(rng.range(300.0, 900.0)),
                        },
                    );
                }
                plan = plan.with_event(
                    at(rng.range(0.10, 0.40)),
                    FaultKind::SlowBoot {
                        factor: rng.range(2.0, 4.0),
                        duration: SimDuration::from_secs(secs * 0.10),
                    },
                );
                plan = plan.with_event(
                    at(rng.range(0.20, 0.60)),
                    FaultKind::TaskEviction {
                        count: 10 + rng.below(21),
                    },
                );
                plan = plan.with_event(
                    at(rng.range(0.15, 0.50)),
                    FaultKind::ArrivalBurst {
                        window: SimDuration::from_secs(secs * 0.05),
                    },
                );
            }
            _ => return None,
        }
        Some(plan)
    }
}

/// Resolves fire-time decisions (victim machines, victim tasks) for one
/// run of a [`FaultPlan`], deterministically from the plan seed.
#[derive(Debug)]
pub struct FaultInjector {
    rng: SplitMix64,
}

impl FaultInjector {
    /// Creates the injector for one run of `plan`.
    pub fn new(plan: &FaultPlan) -> Self {
        FaultInjector {
            rng: SplitMix64::new(plan.seed()),
        }
    }

    /// Picks one victim from `candidates` (uniformly). Returns `None`
    /// when there is nothing to pick.
    pub fn pick_machine(&mut self, candidates: &[MachineId]) -> Option<MachineId> {
        if candidates.is_empty() {
            return None;
        }
        Some(candidates[self.rng.below(candidates.len())])
    }
}

/// A fault the engine actually applied, as recorded in
/// [`crate::SimReport::faults`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// When the fault was applied.
    pub at: SimTime,
    /// What was applied and to what effect.
    pub kind: FaultRecordKind,
}

/// The applied-fault variants of a [`FaultRecord`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultRecordKind {
    /// A machine crashed; `evicted` tasks were re-queued and `failed`
    /// exceeded their retry budget and were dropped.
    MachineCrash {
        /// The crashed machine.
        machine: MachineId,
        /// Tasks re-queued into the pending queue.
        evicted: usize,
        /// Tasks that exhausted their retry budget.
        failed: usize,
    },
    /// A crashed machine finished its downtime and started rebooting.
    MachineRecovered {
        /// The recovering machine.
        machine: MachineId,
    },
    /// A slow-boot window opened with the given boot-time factor.
    SlowBootStart {
        /// Boot-time multiplier now in effect.
        factor: f64,
    },
    /// A slow-boot window closed (boot times back to nominal).
    SlowBootEnd,
    /// A forced-eviction event re-queued `evicted` tasks and dropped
    /// `failed` over-budget ones.
    TaskEviction {
        /// Tasks re-queued into the pending queue.
        evicted: usize,
        /// Tasks that exhausted their retry budget.
        failed: usize,
    },
    /// An arrival burst pulled `tasks_warped` arrivals forward to the
    /// event time.
    ArrivalBurst {
        /// Number of arrivals compressed into the burst instant.
        tasks_warped: usize,
    },
    /// A spot-market reclaim took `machines` machines of `machine_type`
    /// offline; `evicted` resident tasks were re-queued and `failed`
    /// exceeded their retry budget.
    SpotEviction {
        /// The machine type the market reclaimed from.
        machine_type: MachineTypeId,
        /// Machines actually taken offline (≤ the event's `count`).
        machines: usize,
        /// Tasks re-queued into the pending queue.
        evicted: usize,
        /// Tasks that exhausted their retry budget.
        failed: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut uniq = xs.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), xs.len(), "no immediate repeats");
        let mut c = SplitMix64::new(7);
        for _ in 0..100 {
            let f = c.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(c.below(5) < 5);
        }
        assert_eq!(c.below(0), 0);
    }

    #[test]
    fn scenarios_are_reproducible() {
        let span = SimDuration::from_hours(2.0);
        for name in SCENARIOS {
            let a = FaultPlan::scenario(name, 42, span).unwrap();
            let b = FaultPlan::scenario(name, 42, span).unwrap();
            assert_eq!(a, b, "{name} must be deterministic");
            assert!(!a.is_empty(), "{name} must schedule events");
            for ev in a.events() {
                assert!(ev.at.as_secs() >= 0.0 && ev.at.as_secs() <= span.as_secs());
            }
            let c = FaultPlan::scenario(name, 43, span).unwrap();
            assert_ne!(a, c, "{name} must vary with the seed");
        }
        assert!(FaultPlan::scenario("nope", 1, span).is_none());
    }

    #[test]
    fn crash_storm_is_all_crashes() {
        let plan = FaultPlan::scenario("crash-storm", 5, SimDuration::from_hours(2.0)).unwrap();
        assert_eq!(plan.events().len(), 12);
        assert!(plan
            .events()
            .iter()
            .all(|e| matches!(e.kind, FaultKind::MachineCrash { .. })));
    }

    #[test]
    fn builder_and_injector() {
        let plan = FaultPlan::new(9).with_event(
            SimTime::from_secs(10.0),
            FaultKind::TaskEviction { count: 3 },
        );
        assert_eq!(plan.seed(), 9);
        assert_eq!(plan.events().len(), 1);
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.pick_machine(&[]), None);
        let only = [MachineId(4)];
        assert_eq!(inj.pick_machine(&only), Some(MachineId(4)));
        let pool: Vec<MachineId> = (0..10).map(MachineId).collect();
        let picked = inj.pick_machine(&pool).unwrap();
        assert!(pool.contains(&picked));
        // Same plan, fresh injector: same pick sequence.
        let mut inj2 = FaultInjector::new(&plan);
        inj2.pick_machine(&only);
        assert_eq!(inj2.pick_machine(&pool), Some(picked));
    }
}

//! The machine population and bulk power operations.

use harmony_model::{MachineCatalog, MachineTypeId, Resources, SimTime};

use crate::index::FreeIndex;
use crate::machine::{Machine, MachineId};

/// A cluster instantiated from a [`MachineCatalog`]: machines grouped by
/// type, with bulk power-state management and cluster-level accounting.
///
/// With [`Cluster::enable_index`] the cluster additionally maintains an
/// incremental free-capacity index (per-type max-free segment trees and
/// active/busy counters — see [`crate::index`]), making placement and
/// capacity queries O(log machines) instead of O(machines). Queries fall
/// back to exact linear scans when the index is off, and both paths
/// return identical results.
#[derive(Debug, Clone)]
pub struct Cluster {
    catalog: MachineCatalog,
    machines: Vec<Machine>,
    /// Machine ids per type, contiguous by construction.
    by_type: Vec<Vec<MachineId>>,
    switch_count: usize,
    switch_cost: f64,
    /// Boot-time multiplier, normally 1.0; raised by slow-boot faults.
    boot_factor: f64,
    /// Incremental capacity index (None → linear-scan reference paths).
    index: Option<FreeIndex>,
}

impl Cluster {
    /// Instantiates all machines in the catalog, powered off.
    pub fn new(catalog: MachineCatalog) -> Self {
        let mut machines = Vec::with_capacity(catalog.total_machines());
        let mut by_type = Vec::with_capacity(catalog.len());
        for ty in catalog.iter() {
            let mut ids = Vec::with_capacity(ty.count);
            for _ in 0..ty.count {
                let id = MachineId(machines.len());
                machines.push(Machine::new(id, ty.id, ty.capacity, ty.power));
                ids.push(id);
            }
            by_type.push(ids);
        }
        Cluster {
            catalog,
            machines,
            by_type,
            switch_count: 0,
            switch_cost: 0.0,
            boot_factor: 1.0,
            index: None,
        }
    }

    /// Builds (or rebuilds) the incremental capacity index from the
    /// current machine states. Every subsequent mutation keeps it in
    /// sync; queries then run in O(log machines).
    pub fn enable_index(&mut self) {
        self.index = Some(FreeIndex::new(&self.machines, &self.by_type));
    }

    /// `true` if the incremental capacity index is maintained.
    pub fn index_enabled(&self) -> bool {
        self.index.is_some()
    }

    /// Re-reads one machine into the index after a mutation.
    #[inline]
    fn touch(&mut self, id: MachineId) {
        if let Some(index) = self.index.as_mut() {
            index.touch(&self.machines[id.0]);
        }
    }

    /// The catalog this cluster was built from.
    pub fn catalog(&self) -> &MachineCatalog {
        &self.catalog
    }

    /// Total number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// `true` if the cluster has no machines (impossible for a validated
    /// catalog; for API completeness).
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// All machines, indexed by [`MachineId`].
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// One machine by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn machine(&self, id: MachineId) -> &Machine {
        &self.machines[id.0]
    }

    /// Machine ids of one type.
    ///
    /// # Panics
    ///
    /// Panics if `type_id` is out of range.
    pub fn machines_of_type(&self, type_id: MachineTypeId) -> &[MachineId] {
        &self.by_type[type_id.0]
    }

    /// Number of active (on or booting) machines per type.
    pub fn active_per_type(&self) -> Vec<usize> {
        if let Some(index) = &self.index {
            return index.active_per_type();
        }
        self.by_type
            .iter()
            .map(|ids| {
                ids.iter()
                    .filter(|id| self.machines[id.0].is_active())
                    .count()
            })
            .collect()
    }

    /// Number of machines per type currently running at least one task.
    pub fn used_per_type(&self) -> Vec<usize> {
        if let Some(index) = &self.index {
            return index.busy_per_type();
        }
        self.by_type
            .iter()
            .map(|ids| {
                ids.iter()
                    .filter(|id| self.machines[id.0].running_tasks() > 0)
                    .count()
            })
            .collect()
    }

    /// The lowest-id machine on which `demand` can be placed right now
    /// (First-Fit order: ids are contiguous per type, in catalog order).
    /// O(log machines) with the index, an exact linear scan without.
    pub fn first_fit_machine(&self, demand: Resources) -> Option<MachineId> {
        if let Some(index) = &self.index {
            return index.first_fit(&self.machines, demand);
        }
        self.machines
            .iter()
            .find(|m| m.can_place(demand))
            .map(|m| m.id())
    }

    /// The lowest-id machine *of one type* on which `demand` can be
    /// placed right now.
    ///
    /// # Panics
    ///
    /// Panics if `type_id` is out of range.
    pub fn first_fit_machine_of_type(
        &self,
        type_id: MachineTypeId,
        demand: Resources,
    ) -> Option<MachineId> {
        if let Some(index) = &self.index {
            return index.first_fit_of_type(&self.machines, type_id.0, demand);
        }
        self.by_type[type_id.0]
            .iter()
            .find(|id| self.machines[id.0].can_place(demand))
            .copied()
    }

    /// Component-wise maximum free capacity over the `On` machines of
    /// one type, clamped at zero (an all-off type yields
    /// [`Resources::ZERO`]). The drain pass's O(types) capacity
    /// pre-filter.
    ///
    /// # Panics
    ///
    /// Panics if `type_id` is out of range.
    pub fn max_free_of_type(&self, type_id: MachineTypeId) -> Resources {
        if let Some(index) = &self.index {
            return index.max_free_of_type(type_id.0);
        }
        let mut max = Resources::ZERO;
        for id in &self.by_type[type_id.0] {
            let m = &self.machines[id.0];
            if m.is_on() {
                max = max.max(m.free());
            }
        }
        max
    }

    /// Total active machines.
    pub fn total_active(&self) -> usize {
        self.machines.iter().filter(|m| m.is_active()).count()
    }

    /// Instantaneous cluster draw in watts.
    pub fn total_power_watts(&self) -> f64 {
        self.machines.iter().map(Machine::power_watts).sum()
    }

    /// Total energy accrued so far in watt-hours (flush with
    /// [`Cluster::accrue_all`] first for an exact figure).
    pub fn total_energy_wh(&self) -> f64 {
        self.machines.iter().map(Machine::energy_wh).sum()
    }

    /// Number of on/off transitions so far.
    pub fn switch_count(&self) -> usize {
        self.switch_count
    }

    /// Accumulated switching cost in dollars (`Σ q_m |u|`, Eq. 9).
    pub fn switch_cost(&self) -> f64 {
        self.switch_cost
    }

    /// Zeroes the switch counters. Used after constructing an initial
    /// condition (e.g. "all machines on at t=0") whose transitions should
    /// not count against the run.
    pub fn reset_switch_accounting(&mut self) {
        self.switch_count = 0;
        self.switch_cost = 0.0;
    }

    /// Integrates energy on every machine up to `now`.
    pub fn accrue_all(&mut self, now: SimTime) {
        for m in &mut self.machines {
            m.accrue_energy(now);
        }
    }

    /// Starts booting up to `n` powered-off machines of a type, returning
    /// the ids now booting and their shared ready time.
    pub fn power_on(
        &mut self,
        type_id: MachineTypeId,
        n: usize,
        now: SimTime,
    ) -> (Vec<MachineId>, SimTime) {
        let ty = self.catalog.machine_type(type_id);
        let ready_at = now + ty.boot_time * self.boot_factor;
        let q = ty.switching_cost;
        let mut started = Vec::new();
        for i in 0..self.by_type[type_id.0].len() {
            if started.len() >= n {
                break;
            }
            let id = self.by_type[type_id.0][i];
            if self.machines[id.0].power_on(now, ready_at) {
                started.push(id);
                self.switch_count += 1;
                self.switch_cost += q;
                self.touch(id);
            }
        }
        (started, ready_at)
    }

    /// Powers off up to `n` idle machines of a type (most-recently
    /// provisioned first is not tracked; any idle machine qualifies).
    /// Returns how many actually turned off — machines running tasks are
    /// never killed.
    pub fn power_off_idle(&mut self, type_id: MachineTypeId, n: usize, now: SimTime) -> usize {
        let q = self.catalog.machine_type(type_id).switching_cost;
        let mut stopped = 0;
        for i in 0..self.by_type[type_id.0].len() {
            if stopped >= n {
                break;
            }
            let id = self.by_type[type_id.0][i];
            let m = &mut self.machines[id.0];
            // Prefer draining empty On machines; Booting machines may
            // also be cancelled (counts as a switch).
            if m.running_tasks() == 0 && m.is_active() && m.power_off(now) {
                stopped += 1;
                self.switch_count += 1;
                self.switch_cost += q;
                self.touch(id);
            }
        }
        stopped
    }

    /// Powers off one specific idle machine, charging its switching
    /// cost. Returns `false` if it is busy or already off.
    pub fn power_off_machine(&mut self, id: MachineId, now: SimTime) -> bool {
        let ty = self.machines[id.0].type_id();
        let q = self.catalog.machine_type(ty).switching_cost;
        if self.machines[id.0].power_off(now) {
            self.switch_count += 1;
            self.switch_cost += q;
            self.touch(id);
            true
        } else {
            false
        }
    }

    /// The boot-time multiplier currently in effect.
    pub fn boot_factor(&self) -> f64 {
        self.boot_factor
    }

    /// Sets the boot-time multiplier (slow-boot fault windows). Values
    /// below a sane floor are clamped so boots always terminate.
    pub fn set_boot_factor(&mut self, factor: f64) {
        self.boot_factor = if factor.is_finite() {
            factor.max(0.01)
        } else {
            1.0
        };
    }

    /// Crashes one machine (fault injection): it drops every hosted
    /// allocation and stays unusable until `until`. No switching cost is
    /// charged — a failure is not a provisioning action. Returns `false`
    /// if the machine was not active.
    pub fn crash_machine(&mut self, id: MachineId, now: SimTime, until: SimTime) -> bool {
        let crashed = self.machines[id.0].crash(now, until);
        if crashed {
            self.touch(id);
        }
        crashed
    }

    /// Recovers a crashed machine whose downtime has elapsed, leaving it
    /// powered off. Returns `false` if it is not failed or still down.
    pub fn recover_machine(&mut self, id: MachineId, now: SimTime) -> bool {
        let recovered = self.machines[id.0].recover(now);
        if recovered {
            self.touch(id);
        }
        recovered
    }

    /// Reboots one specific powered-off machine without charging
    /// switching cost — the post-crash automatic restart (a repair
    /// action, not a provisioning decision). Returns the ready time, or
    /// `None` if the machine is not off.
    pub fn restart_machine(&mut self, id: MachineId, now: SimTime) -> Option<SimTime> {
        let ty = self.catalog.machine_type(self.machines[id.0].type_id());
        let ready_at = now + ty.boot_time * self.boot_factor;
        if self.machines[id.0].power_on(now, ready_at) {
            self.touch(id);
            Some(ready_at)
        } else {
            None
        }
    }

    /// Moves one running task's allocation from `src` to `dst` (both
    /// must be able to honor it). Returns `false` and changes nothing if
    /// `dst` cannot host the demand or `src` has no running tasks.
    pub fn migrate(
        &mut self,
        src: MachineId,
        dst: MachineId,
        demand: Resources,
        now: SimTime,
    ) -> bool {
        if src == dst
            || self.machines[src.0].running_tasks() == 0
            || !self.machines[dst.0].can_place(demand)
        {
            return false;
        }
        self.machines[src.0].release(now, demand);
        let ok = self.machines[dst.0].allocate(now, demand);
        debug_assert!(ok, "can_place checked above");
        self.touch(src);
        self.touch(dst);
        ok
    }

    /// Completes the boot of a machine (no-op if it was turned off again
    /// meanwhile).
    pub fn boot_complete(&mut self, id: MachineId, now: SimTime) -> bool {
        let done = self.machines[id.0].boot_complete(now);
        if done {
            self.touch(id);
        }
        done
    }

    /// Places one task of size `demand` on machine `id`.
    pub fn allocate(&mut self, id: MachineId, demand: Resources, now: SimTime) -> bool {
        let ok = self.machines[id.0].allocate(now, demand);
        if ok {
            self.touch(id);
        }
        ok
    }

    /// Releases one task of size `demand` from machine `id`.
    ///
    /// # Panics
    ///
    /// Panics if the machine has no running tasks.
    pub fn release(&mut self, id: MachineId, demand: Resources, now: SimTime) {
        self.machines[id.0].release(now, demand);
        self.touch(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_model::MachineCatalog;

    fn tiny() -> Cluster {
        Cluster::new(MachineCatalog::table2().scaled(1000)) // 7/2/1/1
    }

    #[test]
    fn construction_matches_catalog() {
        let c = tiny();
        assert_eq!(c.len(), 7 + 2 + 1 + 1);
        assert_eq!(c.machines_of_type(MachineTypeId(0)).len(), 7);
        assert_eq!(c.machines_of_type(MachineTypeId(3)).len(), 1);
        assert_eq!(c.total_active(), 0);
        assert!(!c.is_empty());
        // Ids are dense and match positions.
        for (i, m) in c.machines().iter().enumerate() {
            assert_eq!(m.id(), MachineId(i));
        }
    }

    #[test]
    fn bulk_power_on_and_off() {
        let mut c = tiny();
        let (started, ready) = c.power_on(MachineTypeId(0), 3, SimTime::ZERO);
        assert_eq!(started.len(), 3);
        assert!(ready > SimTime::ZERO);
        assert_eq!(c.active_per_type(), vec![3, 0, 0, 0]);
        assert_eq!(c.switch_count(), 3);
        for id in &started {
            assert!(c.boot_complete(*id, ready));
        }
        // Request more than exist: capped.
        let (more, _) = c.power_on(MachineTypeId(0), 100, ready);
        assert_eq!(more.len(), 4);
        // Turn off 5 idle ones.
        assert_eq!(c.power_off_idle(MachineTypeId(0), 5, ready), 5);
        assert_eq!(c.active_per_type()[0], 2);
        assert!(c.switch_cost() > 0.0);
    }

    #[test]
    fn busy_machines_survive_power_off() {
        let mut c = tiny();
        let (ids, ready) = c.power_on(MachineTypeId(1), 2, SimTime::ZERO);
        for id in &ids {
            c.boot_complete(*id, ready);
        }
        assert!(c.allocate(ids[0], Resources::new(0.1, 0.1), ready));
        // Only the idle one can stop.
        assert_eq!(c.power_off_idle(MachineTypeId(1), 2, ready), 1);
        assert!(c.machine(ids[0]).is_on());
        assert_eq!(c.used_per_type()[1], 1);
        c.release(ids[0], Resources::new(0.1, 0.1), ready);
        assert_eq!(c.power_off_idle(MachineTypeId(1), 2, ready), 1);
        assert_eq!(c.total_active(), 0);
    }

    #[test]
    fn migrate_moves_allocation_between_machines() {
        let mut c = tiny();
        let (ids, ready) = c.power_on(MachineTypeId(1), 2, SimTime::ZERO);
        for id in &ids {
            c.boot_complete(*id, ready);
        }
        let demand = Resources::new(0.1, 0.2);
        assert!(c.allocate(ids[0], demand, ready));
        assert!(c.migrate(ids[0], ids[1], demand, ready));
        assert_eq!(c.machine(ids[0]).running_tasks(), 0);
        assert_eq!(c.machine(ids[1]).running_tasks(), 1);
        assert_eq!(c.machine(ids[1]).used(), demand);
        // Cannot migrate to self, from empty, or beyond capacity.
        assert!(!c.migrate(ids[1], ids[1], demand, ready));
        assert!(!c.migrate(ids[0], ids[1], demand, ready));
        assert!(!c.migrate(ids[1], ids[0], Resources::new(0.9, 0.9), ready));
    }

    #[test]
    fn power_off_machine_charges_switching_cost() {
        let mut c = tiny();
        let (ids, ready) = c.power_on(MachineTypeId(0), 2, SimTime::ZERO);
        for id in &ids {
            c.boot_complete(*id, ready);
        }
        c.reset_switch_accounting();
        assert!(c.allocate(ids[0], Resources::new(0.01, 0.01), ready));
        // Busy machine refuses; idle one powers off and is charged.
        assert!(!c.power_off_machine(ids[0], ready));
        assert!(c.power_off_machine(ids[1], ready));
        assert_eq!(c.switch_count(), 1);
        assert!(c.switch_cost() > 0.0);
        // Double off is a no-op.
        assert!(!c.power_off_machine(ids[1], ready));
        assert_eq!(c.switch_count(), 1);
    }

    #[test]
    fn crash_recover_restart_cycle() {
        let mut c = tiny();
        let (ids, ready) = c.power_on(MachineTypeId(0), 2, SimTime::ZERO);
        for id in &ids {
            c.boot_complete(*id, ready);
        }
        assert!(c.allocate(ids[0], Resources::new(0.05, 0.05), ready));
        let switches_before = c.switch_count();
        let down_until = ready + harmony_model::SimDuration::from_secs(600.0);
        assert!(c.crash_machine(ids[0], ready, down_until));
        assert!(c.machine(ids[0]).is_failed());
        assert_eq!(c.active_per_type()[0], 1);
        // Crashes and repairs are free of switching cost.
        assert_eq!(c.switch_count(), switches_before);
        assert!(!c.recover_machine(ids[0], ready), "still down");
        assert!(c.recover_machine(ids[0], down_until));
        let restart_ready = c.restart_machine(ids[0], down_until).unwrap();
        assert!(restart_ready > down_until);
        assert!(c.boot_complete(ids[0], restart_ready));
        assert!(c.machine(ids[0]).is_on());
        assert_eq!(c.switch_count(), switches_before);
        // Restarting a machine that is not off fails.
        assert!(c.restart_machine(ids[0], restart_ready).is_none());
    }

    #[test]
    fn slow_boot_factor_stretches_boots() {
        let mut c = tiny();
        let (_, nominal) = c.power_on(MachineTypeId(0), 1, SimTime::ZERO);
        c.set_boot_factor(3.0);
        assert_eq!(c.boot_factor(), 3.0);
        let (ids, slow) = c.power_on(MachineTypeId(0), 1, SimTime::ZERO);
        assert_eq!(ids.len(), 1);
        assert!(
            (slow.as_secs() - 3.0 * nominal.as_secs()).abs() < 1e-9,
            "slow {slow:?} vs nominal {nominal:?}"
        );
        // Non-finite factors reset to nominal; tiny ones are floored.
        c.set_boot_factor(f64::NAN);
        assert_eq!(c.boot_factor(), 1.0);
        c.set_boot_factor(0.0);
        assert!(c.boot_factor() > 0.0);
    }

    #[test]
    fn energy_rolls_up() {
        let mut c = tiny();
        let (ids, _) = c.power_on(MachineTypeId(3), 1, SimTime::ZERO);
        c.boot_complete(ids[0], SimTime::ZERO + harmony_model::SimDuration::ZERO);
        c.accrue_all(SimTime::from_hours(1.0));
        // DL585 idle = 280 W for 1h.
        assert!(
            (c.total_energy_wh() - 280.0).abs() < 1.0,
            "wh = {}",
            c.total_energy_wh()
        );
        assert!(c.total_power_watts() >= 280.0);
    }
}

//! The discrete-event loop.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use harmony_model::{
    EnergyPrice, MachineCatalog, MachineTypeId, PriorityGroup, Resources, SimDuration, SimTime,
    Task, TaskId,
};
use harmony_trace::Trace;

use crate::calendar::CalendarQueue;
use crate::cluster::Cluster;
use crate::controller::{Controller, DegradationEvent, Observation, TaskView};
use crate::faults::{FaultInjector, FaultKind, FaultPlan, FaultRecord, FaultRecordKind};
use crate::machine::MachineId;
use crate::metrics::{SimReport, TimePoint};
use crate::scheduler::Scheduler;

/// Which engine internals a run uses. Both modes execute the identical
/// decision sequence and produce byte-identical [`SimReport`]s; they
/// differ only in asymptotics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Indexed cluster state (per-type max-free segment trees,
    /// incremental active/busy counters) and a calendar event queue —
    /// O(log machines) placement, O(types) drain pre-filter, O(1)
    /// amortized event scheduling. The default; runs paper scale
    /// (10,000 machines, millions of tasks) in CI-feasible wall time.
    #[default]
    Indexed,
    /// The seed engine's linear-scan placement and global `BinaryHeap`
    /// event loop. Kept verbatim as the determinism oracle: the
    /// cross-engine property suite asserts byte-identical reports
    /// against it, and `sim_scale` measures speedups relative to it.
    Reference,
}

/// Static configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    catalog: MachineCatalog,
    price: EnergyPrice,
    all_on: bool,
    sample_interval: SimDuration,
    drain_failure_limit: usize,
    preemption: bool,
    faults: Option<FaultPlan>,
    max_task_retries: u32,
    mode: EngineMode,
}

impl SimulationConfig {
    /// Creates a configuration for the given machine catalog with a flat
    /// default energy price, all machines initially off, 15-minute metric
    /// samples, a drain batch limit of 256 distinct failures, and
    /// priority preemption enabled (higher priority groups may evict
    /// lower ones, as in the Google cluster the paper analyses).
    pub fn new(catalog: MachineCatalog) -> Self {
        SimulationConfig {
            catalog,
            price: EnergyPrice::default(),
            all_on: false,
            sample_interval: SimDuration::from_mins(15.0),
            drain_failure_limit: 256,
            preemption: true,
            faults: None,
            max_task_retries: 3,
            mode: EngineMode::default(),
        }
    }

    /// Selects the engine internals (see [`EngineMode`]). The default is
    /// [`EngineMode::Indexed`]; [`EngineMode::Reference`] keeps the seed
    /// engine's scan-everything behavior as the regression oracle.
    pub fn engine_mode(mut self, mode: EngineMode) -> Self {
        self.mode = mode;
        self
    }

    /// Starts the run with every machine already on (no boot delay) —
    /// used for open-loop trace analysis like Fig. 4.
    pub fn all_machines_on(mut self) -> Self {
        self.all_on = true;
        self
    }

    /// Sets the electricity price curve `p_t`.
    pub fn price(mut self, price: EnergyPrice) -> Self {
        self.price = price;
        self
    }

    /// Sets the metric sampling interval.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn sample_interval(mut self, interval: SimDuration) -> Self {
        assert!(interval.as_secs() > 0.0, "sample interval must be positive");
        self.sample_interval = interval;
        self
    }

    /// Sets how many distinct placement failures end a drain pass (the
    /// scheduler's batching knob).
    pub fn drain_failure_limit(mut self, limit: usize) -> Self {
        self.drain_failure_limit = limit.max(1);
        self
    }

    /// Disables priority preemption (no evictions).
    pub fn without_preemption(mut self) -> Self {
        self.preemption = false;
        self
    }

    /// Injects the given fault plan into the run. Fault events are
    /// scheduled into the event loop alongside arrivals and control
    /// ticks; every applied fault is recorded in
    /// [`SimReport::faults`](crate::SimReport).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets how many fault-induced interruptions a task survives before
    /// it is dropped as failed (default 3). Priority preemption does not
    /// count against this budget — only injected crashes and evictions
    /// do.
    pub fn max_task_retries(mut self, retries: u32) -> Self {
        self.max_task_retries = retries;
        self
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum EventKind {
    Arrival(usize),
    /// Task completion. `epoch` stamps the placement that scheduled it:
    /// a stale completion (the task was evicted and re-queued since) is
    /// ignored.
    Finish {
        task_idx: usize,
        epoch: u32,
    },
    BootDone(MachineId),
    Control,
    Sample,
    /// An injected fault fires; the payload indexes the plan's events.
    Fault(usize),
    /// A crashed machine's downtime elapsed.
    FaultRecover(MachineId),
    /// A slow-boot window ended; boot times return to nominal.
    SlowBootEnd,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct HeapItem {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse for earliest-first.
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event queue behind the run loop: a global binary heap
/// (reference) or a calendar queue (indexed). Both pop the strict
/// `(time, seq)` minimum, so the event sequence is identical.
#[derive(Debug)]
enum EventQueue {
    Heap {
        heap: BinaryHeap<HeapItem>,
        peak: usize,
    },
    Calendar(CalendarQueue<EventKind>),
}

impl EventQueue {
    fn push(&mut self, time: SimTime, seq: u64, kind: EventKind) {
        match self {
            EventQueue::Heap { heap, peak } => {
                heap.push(HeapItem { time, seq, kind });
                *peak = (*peak).max(heap.len());
            }
            EventQueue::Calendar(cal) => cal.push(time, seq, kind),
        }
    }

    fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        match self {
            EventQueue::Heap { heap, .. } => heap.pop().map(|item| (item.time, item.kind)),
            EventQueue::Calendar(cal) => cal.pop(),
        }
    }

    /// High-watermark of resident events (`sim.heap_peak`).
    fn peak(&self) -> usize {
        match self {
            EventQueue::Heap { peak, .. } => *peak,
            EventQueue::Calendar(cal) => cal.peak(),
        }
    }
}

/// Pending-queue key: higher priority first, then FIFO by arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct PendKey {
    neg_priority: i16,
    arrival: SimTime,
    id: TaskId,
}

impl PendKey {
    fn of(task: &Task) -> Self {
        PendKey {
            neg_priority: -(task.priority.level() as i16),
            arrival: task.arrival,
            id: task.id,
        }
    }
}

/// Bidirectional task↔machine placement book.
///
/// Ordered maps, deliberately: crash handling and repack iterate these,
/// and the run must be bit-identical across repeats for checkpoint
/// replay (see `tests/determinism.rs`), so no hash-order dependence.
#[derive(Debug, Default)]
struct Placements {
    host_of: BTreeMap<usize, MachineId>,
    residents: BTreeMap<MachineId, Vec<usize>>,
}

impl Placements {
    fn insert(&mut self, idx: usize, machine: MachineId) {
        self.host_of.insert(idx, machine);
        self.residents.entry(machine).or_default().push(idx);
    }

    // Invariant: callers only remove tasks the engine placed earlier in
    // the same run (host_of and residents are updated in lockstep).
    #[allow(clippy::expect_used)]
    fn remove(&mut self, idx: usize) -> MachineId {
        let machine = self.host_of.remove(&idx).expect("task must be placed");
        if let Some(list) = self.residents.get_mut(&machine) {
            list.retain(|&i| i != idx);
            if list.is_empty() {
                self.residents.remove(&machine);
            }
        }
        machine
    }

    fn relocate(&mut self, idx: usize, to: MachineId) {
        self.remove(idx);
        self.insert(idx, to);
    }

    fn on(&self, machine: MachineId) -> &[usize] {
        self.residents
            .get(&machine)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// Mutable per-task execution state.
#[derive(Debug)]
struct TaskState {
    /// Placement epoch; bumped on eviction so stale finish events are
    /// ignored.
    epoch: Vec<u32>,
    /// Remaining execution time in seconds. Eviction uses
    /// suspend/resume semantics: work done before the eviction is kept,
    /// so only the remainder has to run after re-placement.
    remaining_secs: Vec<f64>,
    /// When the task last started executing (for computing the
    /// remainder on eviction).
    started_at: Vec<SimTime>,
    /// When the task last entered the pending queue (arrival, or the
    /// moment it was evicted). Scheduling delay is measured per attempt
    /// from this instant, matching the per-submission semantics of the
    /// Google trace.
    queued_since: Vec<SimTime>,
    /// How many fault-induced interruptions (crash or injected
    /// eviction) the task has absorbed. Priority preemption is not
    /// counted: the retry budget bounds fault damage, not scheduling
    /// policy.
    retries: Vec<u32>,
}

impl TaskState {
    fn new(tasks: &[Task], queued_since: Vec<SimTime>) -> Self {
        TaskState {
            epoch: vec![0; tasks.len()],
            remaining_secs: tasks.iter().map(|t| t.duration.as_secs()).collect(),
            started_at: vec![SimTime::ZERO; tasks.len()],
            queued_since,
            retries: vec![0; tasks.len()],
        }
    }
}

/// A configured simulation, ready to run over a trace.
#[derive(Debug)]
pub struct Simulation<'t> {
    config: SimulationConfig,
    trace: &'t Trace,
    scheduler: Box<dyn Scheduler>,
    controller: Option<Box<dyn Controller>>,
}

/// Everything the event handlers mutate, bundled to keep call sites
/// sane.
struct RunState {
    cluster: Cluster,
    pending: BTreeMap<PendKey, usize>,
    placements: Placements,
    task_state: TaskState,
    running_set: BTreeSet<usize>,
    delays: [Vec<f64>; 3],
    completed: usize,
    unschedulable: usize,
    failed: usize,
    migrations: usize,
    evictions: usize,
    faults: Vec<FaultRecord>,
    degradations: Vec<DegradationEvent>,
    queue: EventQueue,
    seq: u64,
    /// Pending-queue high-watermark, observed at every insert (the only
    /// instant the queue can grow), so it is tracked in exactly one
    /// place.
    pending_peak: usize,
}

impl RunState {
    fn push(&mut self, time: SimTime, kind: EventKind) {
        self.seq += 1;
        self.queue.push(time, self.seq, kind);
    }

    /// Inserts a task into the pending queue, updating the peak.
    fn enqueue_pending(&mut self, key: PendKey, idx: usize) {
        self.pending.insert(key, idx);
        self.pending_peak = self.pending_peak.max(self.pending.len());
    }
}

impl<'t> Simulation<'t> {
    /// Builds a simulation without a capacity controller (machine states
    /// change only via the initial condition).
    pub fn new(config: SimulationConfig, trace: &'t Trace, scheduler: Box<dyn Scheduler>) -> Self {
        Simulation {
            config,
            trace,
            scheduler,
            controller: None,
        }
    }

    /// Attaches a dynamic-capacity-provisioning controller.
    pub fn with_controller(mut self, controller: Box<dyn Controller>) -> Self {
        self.controller = Some(controller);
        self
    }

    /// Runs the simulation to the end of the trace span.
    pub fn run(mut self) -> SimReport {
        let tasks = self.trace.tasks();
        let end = SimTime::ZERO + self.trace.span();
        let plan = self.config.faults.clone();
        let mut injector = plan.as_ref().map(FaultInjector::new);
        // Arrival-burst faults warp upcoming arrivals to the burst
        // instant before the run starts: the same tasks arrive, just
        // compressed in time, so conservation is unaffected.
        let mut effective_arrival: Vec<SimTime> = tasks.iter().map(|t| t.arrival).collect();
        let mut burst_counts: BTreeMap<usize, usize> = BTreeMap::new();
        if let Some(plan) = plan.as_ref() {
            for (ei, ev) in plan.events().iter().enumerate() {
                if let FaultKind::ArrivalBurst { window } = ev.kind {
                    let hi = ev.at + window;
                    let mut warped = 0usize;
                    for (i, t) in tasks.iter().enumerate() {
                        if t.arrival > ev.at && t.arrival <= hi {
                            effective_arrival[i] = effective_arrival[i].min(ev.at);
                            warped += 1;
                        }
                    }
                    burst_counts.insert(ei, warped);
                }
            }
        }
        let mut cluster = Cluster::new(self.config.catalog.clone());
        let queue = match self.config.mode {
            EngineMode::Indexed => {
                cluster.enable_index();
                // Expected population: every task contributes an arrival
                // and (roughly) a finish; boots/controls/samples are noise
                // at scale. The calendar resizes itself either way.
                let expected = tasks.len().saturating_mul(2).max(1024);
                EventQueue::Calendar(CalendarQueue::new(self.trace.span().as_secs(), expected))
            }
            EngineMode::Reference => EventQueue::Heap {
                heap: BinaryHeap::new(),
                peak: 0,
            },
        };
        let mut st = RunState {
            cluster,
            pending: BTreeMap::new(),
            placements: Placements::default(),
            task_state: TaskState::new(tasks, effective_arrival.clone()),
            running_set: BTreeSet::new(),
            delays: [Vec::new(), Vec::new(), Vec::new()],
            completed: 0,
            unschedulable: 0,
            failed: 0,
            migrations: 0,
            evictions: 0,
            faults: Vec::new(),
            degradations: Vec::new(),
            queue,
            seq: 0,
            pending_peak: 0,
        };

        if self.config.all_on {
            for ty in 0..st.cluster.catalog().len() {
                let boot_time = st
                    .cluster
                    .catalog()
                    .machine_type(MachineTypeId(ty))
                    .boot_time;
                let (ids, _) = st
                    .cluster
                    .power_on(MachineTypeId(ty), usize::MAX, SimTime::ZERO);
                for id in ids {
                    // On from t=0: complete the boot at its nominal ready
                    // time without advancing the clock.
                    st.cluster.boot_complete(id, SimTime::ZERO + boot_time);
                }
            }
            // The initial condition is given, not a provisioning action.
            st.cluster.reset_switch_accounting();
        }

        for (i, arrival) in effective_arrival.iter().enumerate() {
            st.push(*arrival, EventKind::Arrival(i));
        }
        if let Some(plan) = plan.as_ref() {
            for (ei, ev) in plan.events().iter().enumerate() {
                st.push(ev.at, EventKind::Fault(ei));
            }
        }
        if self.controller.is_some() {
            st.push(SimTime::ZERO, EventKind::Control);
        }
        st.push(SimTime::ZERO, EventKind::Sample);

        let mut series: Vec<TimePoint> = Vec::new();
        // Control-handoff scratch: index lists rebuilt per tick, reused
        // across ticks, so the controller observes borrowed views into
        // the task arena instead of freshly cloned `Vec<Task>`s.
        let mut arrived_this_period: Vec<u32> = Vec::new();
        let mut pending_view: Vec<u32> = Vec::new();
        let mut running_view: Vec<u32> = Vec::new();
        let mut energy_cost = 0.0f64;
        let mut last_cost_energy = 0.0f64;

        // Event tallies for telemetry: plain locals on the hot loop,
        // flushed to the global registry once at the end of the run so
        // per-event overhead stays at an integer increment.
        let mut event_counts = [0u64; 6];
        const EV_ARRIVAL: usize = 0;
        const EV_FINISH: usize = 1;
        const EV_BOOT: usize = 2;
        const EV_CONTROL: usize = 3;
        const EV_SAMPLE: usize = 4;
        const EV_FAULT: usize = 5;

        // Pre-compute per-task schedulability against the catalog.
        let schedulable: Vec<bool> = tasks
            .iter()
            .map(|t| {
                self.config
                    .catalog
                    .iter()
                    .any(|m| t.demand.fits_within(m.capacity))
            })
            .collect();

        while let Some((now, kind)) = st.queue.pop() {
            if now > end {
                break;
            }
            event_counts[match kind {
                EventKind::Arrival(_) => EV_ARRIVAL,
                EventKind::Finish { .. } => EV_FINISH,
                EventKind::BootDone(_) => EV_BOOT,
                EventKind::Control => EV_CONTROL,
                EventKind::Sample => EV_SAMPLE,
                EventKind::Fault(_) | EventKind::FaultRecover(_) | EventKind::SlowBootEnd => {
                    EV_FAULT
                }
            }] += 1;
            match kind {
                EventKind::Arrival(idx) => {
                    if !schedulable[idx] {
                        st.unschedulable += 1;
                        continue;
                    }
                    arrived_this_period.push(idx as u32);
                    if !self.place_or_preempt(&mut st, tasks, idx, now) {
                        st.enqueue_pending(PendKey::of(&tasks[idx]), idx);
                    }
                }
                EventKind::Finish { task_idx, epoch } => {
                    if st.task_state.epoch[task_idx] != epoch {
                        continue; // stale: the task was evicted since
                    }
                    let task = &tasks[task_idx];
                    let machine = st.placements.remove(task_idx);
                    st.cluster.release(machine, task.demand, now);
                    self.scheduler.on_finished(task, machine, &st.cluster);
                    st.running_set.remove(&task_idx);
                    st.completed += 1;
                    self.drain(&mut st, tasks, now);
                }
                EventKind::BootDone(id) => {
                    if st.cluster.boot_complete(id, now) {
                        self.drain(&mut st, tasks, now);
                    }
                }
                EventKind::Control => {
                    if let Some(controller) = self.controller.as_mut() {
                        pending_view.clear();
                        pending_view.extend(st.pending.values().map(|&i| i as u32));
                        running_view.clear();
                        running_view.extend(st.running_set.iter().map(|&i| i as u32));
                        // The sim clock is virtual; this times the real
                        // cost of the provisioning hot path per period.
                        let decision =
                            harmony_telemetry::global().time("sim.controller_seconds", || {
                                controller.decide(&Observation {
                                    now,
                                    cluster: &st.cluster,
                                    pending: TaskView::indexed(tasks, &pending_view),
                                    arrived_last_period: TaskView::indexed(
                                        tasks,
                                        &arrived_this_period,
                                    ),
                                    running: TaskView::indexed(tasks, &running_view),
                                })
                            });
                        arrived_this_period.clear();
                        st.degradations.extend(controller.take_degradations());
                        let active = st.cluster.active_per_type();
                        for (ty, (&target, &current)) in
                            decision.target_active.iter().zip(&active).enumerate()
                        {
                            let ty_id = MachineTypeId(ty);
                            match target.cmp(&current) {
                                Ordering::Greater => {
                                    let (ids, ready) =
                                        st.cluster.power_on(ty_id, target - current, now);
                                    for id in ids {
                                        st.push(ready, EventKind::BootDone(id));
                                    }
                                }
                                Ordering::Less => {
                                    st.cluster.power_off_idle(ty_id, current - target, now);
                                }
                                Ordering::Equal => {}
                            }
                        }
                        if decision.repack {
                            st.migrations += repack(
                                &mut st.cluster,
                                &decision.target_active,
                                &mut st.placements,
                                tasks,
                                now,
                            );
                        }
                        let next = now + controller.control_period();
                        if next <= end {
                            st.push(next, EventKind::Control);
                        }
                        // Capacity targets and scheduler state (e.g. CBS
                        // quotas) just changed: give the queue a chance
                        // immediately.
                        self.drain(&mut st, tasks, now);
                    }
                }
                EventKind::Sample => {
                    st.cluster.accrue_all(now);
                    let energy = st.cluster.total_energy_wh();
                    energy_cost += self.config.price.cost_of_wh(energy - last_cost_energy, now);
                    last_cost_energy = energy;
                    series.push(TimePoint {
                        time: now,
                        power_watts: st.cluster.total_power_watts(),
                        active_per_type: st.cluster.active_per_type(),
                        used_per_type: st.cluster.used_per_type(),
                        pending_tasks: st.pending.len(),
                    });
                    let next = now + self.config.sample_interval;
                    if next <= end {
                        st.push(next, EventKind::Sample);
                    }
                }
                EventKind::Fault(ei) => {
                    let Some(plan) = plan.as_ref() else { continue };
                    let event = plan.events()[ei];
                    match event.kind {
                        FaultKind::MachineCrash { down } => {
                            let candidates = crash_candidates(&st);
                            let victim = injector
                                .as_mut()
                                .and_then(|inj| inj.pick_machine(&candidates));
                            if let Some(id) = victim {
                                // Evict residents first (the crash zeroes
                                // the machine's allocation wholesale, so
                                // no per-task release).
                                let residents = st.placements.on(id).to_vec();
                                let mut evicted = 0usize;
                                let mut failed = 0usize;
                                for t_idx in residents {
                                    if self.fault_interrupt(&mut st, tasks, t_idx, now, false) {
                                        evicted += 1;
                                    } else {
                                        failed += 1;
                                    }
                                }
                                let until = now + down;
                                if st.cluster.crash_machine(id, now, until) {
                                    st.push(until, EventKind::FaultRecover(id));
                                    st.faults.push(FaultRecord {
                                        at: now,
                                        kind: FaultRecordKind::MachineCrash {
                                            machine: id,
                                            evicted,
                                            failed,
                                        },
                                    });
                                    self.drain(&mut st, tasks, now);
                                }
                            }
                        }
                        FaultKind::SlowBoot { factor, duration } => {
                            st.cluster.set_boot_factor(factor);
                            st.push(now + duration, EventKind::SlowBootEnd);
                            st.faults.push(FaultRecord {
                                at: now,
                                kind: FaultRecordKind::SlowBootStart { factor },
                            });
                        }
                        FaultKind::TaskEviction { count } => {
                            // Evict the lowest-priority running tasks, a
                            // stand-in for the Google trace's EVICT
                            // events.
                            let mut running: Vec<usize> = st.running_set.iter().copied().collect();
                            running.sort_by_key(|&i| (tasks[i].priority.level(), i));
                            let mut evicted = 0usize;
                            let mut failed = 0usize;
                            for v in running.into_iter().take(count) {
                                if self.fault_interrupt(&mut st, tasks, v, now, true) {
                                    evicted += 1;
                                } else {
                                    failed += 1;
                                }
                            }
                            if evicted + failed > 0 {
                                st.faults.push(FaultRecord {
                                    at: now,
                                    kind: FaultRecordKind::TaskEviction { evicted, failed },
                                });
                                self.drain(&mut st, tasks, now);
                            }
                        }
                        FaultKind::ArrivalBurst { .. } => {
                            // The warp was applied before the run (see
                            // `effective_arrival`); record its size here
                            // so the report lists the burst in time
                            // order with the other faults.
                            let tasks_warped = burst_counts.get(&ei).copied().unwrap_or(0);
                            st.faults.push(FaultRecord {
                                at: now,
                                kind: FaultRecordKind::ArrivalBurst { tasks_warped },
                            });
                        }
                        FaultKind::SpotEviction { machine_type, count, down } => {
                            // A market reclaim is a typed multi-machine
                            // crash: pick up to `count` victims of the
                            // priced type (busy first, like crashes) and
                            // take each through the crash path.
                            let mut machines = 0usize;
                            let mut evicted = 0usize;
                            let mut failed = 0usize;
                            let until = now + down;
                            for _ in 0..count {
                                let candidates = spot_candidates(&st, machine_type);
                                let victim = injector
                                    .as_mut()
                                    .and_then(|inj| inj.pick_machine(&candidates));
                                let Some(id) = victim else { break };
                                let residents = st.placements.on(id).to_vec();
                                for t_idx in residents {
                                    if self.fault_interrupt(&mut st, tasks, t_idx, now, false) {
                                        evicted += 1;
                                    } else {
                                        failed += 1;
                                    }
                                }
                                if st.cluster.crash_machine(id, now, until) {
                                    machines += 1;
                                    st.push(until, EventKind::FaultRecover(id));
                                }
                            }
                            if machines > 0 {
                                st.faults.push(FaultRecord {
                                    at: now,
                                    kind: FaultRecordKind::SpotEviction {
                                        machine_type,
                                        machines,
                                        evicted,
                                        failed,
                                    },
                                });
                                self.drain(&mut st, tasks, now);
                            }
                        }
                    }
                }
                EventKind::FaultRecover(id) => {
                    if st.cluster.recover_machine(id, now) {
                        st.faults.push(FaultRecord {
                            at: now,
                            kind: FaultRecordKind::MachineRecovered { machine: id },
                        });
                        // A repaired machine comes straight back (no
                        // switch cost: this is repair, not provisioning).
                        if let Some(ready) = st.cluster.restart_machine(id, now) {
                            st.push(ready, EventKind::BootDone(id));
                        }
                    }
                }
                EventKind::SlowBootEnd => {
                    st.cluster.set_boot_factor(1.0);
                    st.faults.push(FaultRecord {
                        at: now,
                        kind: FaultRecordKind::SlowBootEnd,
                    });
                }
            }
        }

        st.cluster.accrue_all(end);
        let energy = st.cluster.total_energy_wh();
        energy_cost += self.config.price.cost_of_wh(energy - last_cost_energy, end);

        let registry = harmony_telemetry::global();
        for (name, n) in [
            ("sim.events.arrival", event_counts[EV_ARRIVAL]),
            ("sim.events.finish", event_counts[EV_FINISH]),
            ("sim.events.boot", event_counts[EV_BOOT]),
            ("sim.events.control", event_counts[EV_CONTROL]),
            ("sim.events.sample", event_counts[EV_SAMPLE]),
            ("sim.events.fault", event_counts[EV_FAULT]),
        ] {
            if n > 0 {
                registry.counter(name).add(n);
            }
        }
        registry
            .gauge("sim.pending_peak")
            .set_max(st.pending_peak as f64);
        registry
            .gauge("sim.heap_peak")
            .set_max(st.queue.peak() as f64);

        SimReport {
            delays_by_group: st.delays,
            tasks_completed: st.completed,
            tasks_running_at_end: st.running_set.len(),
            tasks_pending_at_end: st.pending.len(),
            tasks_unschedulable: st.unschedulable,
            tasks_failed: st.failed,
            total_energy_wh: energy,
            energy_cost_dollars: energy_cost,
            switch_count: st.cluster.switch_count(),
            switch_cost_dollars: st.cluster.switch_cost(),
            migrations: st.migrations,
            evictions: st.evictions,
            faults: st.faults,
            degradations: st.degradations,
            series,
        }
    }

    /// Interrupts a running task because of an injected fault: removes
    /// it from its host (releasing the allocation when `release` —
    /// machine crashes zero the whole machine instead), keeps the work
    /// done so far, and re-queues it unless its retry budget is
    /// exhausted. Returns `true` if the task was re-queued, `false` if
    /// it was dropped as failed.
    fn fault_interrupt(
        &mut self,
        st: &mut RunState,
        tasks: &[Task],
        idx: usize,
        now: SimTime,
        release: bool,
    ) -> bool {
        let task = &tasks[idx];
        let machine = st.placements.remove(idx);
        if release {
            st.cluster.release(machine, task.demand, now);
        }
        self.scheduler.on_finished(task, machine, &st.cluster);
        st.running_set.remove(&idx);
        let ran = now
            .saturating_since(st.task_state.started_at[idx])
            .as_secs();
        st.task_state.remaining_secs[idx] = (st.task_state.remaining_secs[idx] - ran).max(1.0);
        st.task_state.epoch[idx] += 1;
        st.task_state.retries[idx] += 1;
        if st.task_state.retries[idx] > self.config.max_task_retries {
            st.failed += 1;
            false
        } else {
            st.task_state.queued_since[idx] = now;
            st.enqueue_pending(PendKey::of(task), idx);
            true
        }
    }

    /// Commits a placement: allocation, bookkeeping, finish event, delay
    /// record.
    fn commit_placement(
        &mut self,
        st: &mut RunState,
        tasks: &[Task],
        idx: usize,
        machine: MachineId,
        now: SimTime,
    ) {
        let task = &tasks[idx];
        self.scheduler.on_placed(task, machine, &st.cluster);
        let delay = now
            .saturating_since(st.task_state.queued_since[idx])
            .as_secs();
        st.delays[task.priority.group().index()].push(delay);
        st.running_set.insert(idx);
        st.placements.insert(idx, machine);
        st.task_state.started_at[idx] = now;
        let finish = now + SimDuration::from_secs(st.task_state.remaining_secs[idx]);
        let epoch = st.task_state.epoch[idx];
        st.push(
            finish,
            EventKind::Finish {
                task_idx: idx,
                epoch,
            },
        );
    }

    /// Tries regular placement, then (for non-gratis tasks, with
    /// preemption enabled) eviction of lower-priority-group tasks.
    /// Returns `true` if the task started executing.
    fn place_or_preempt(
        &mut self,
        st: &mut RunState,
        tasks: &[Task],
        idx: usize,
        now: SimTime,
    ) -> bool {
        if self.try_place_plain(st, tasks, idx, now) {
            return true;
        }
        self.try_preempt_place(st, tasks, idx, now)
    }

    fn try_place_plain(
        &mut self,
        st: &mut RunState,
        tasks: &[Task],
        idx: usize,
        now: SimTime,
    ) -> bool {
        let task = tasks[idx];
        if let Some(machine) = self.scheduler.place(&task, &st.cluster) {
            if st.cluster.allocate(machine, task.demand, now) {
                self.commit_placement(st, tasks, idx, machine, now);
                return true;
            }
        }
        false
    }

    fn try_preempt_place(
        &mut self,
        st: &mut RunState,
        tasks: &[Task],
        idx: usize,
        now: SimTime,
    ) -> bool {
        let task = tasks[idx];
        if !self.config.preemption || task.priority.group() == PriorityGroup::Gratis {
            return false;
        }
        let Some((machine, victims)) = find_preemption(st, tasks, &task) else {
            return false;
        };
        for victim in victims {
            let host = st.placements.remove(victim);
            debug_assert_eq!(host, machine);
            let vt = &tasks[victim];
            st.cluster.release(host, vt.demand, now);
            self.scheduler.on_finished(vt, host, &st.cluster);
            st.running_set.remove(&victim);
            // Suspend/resume: keep the work done so far, only the
            // remainder runs after re-placement. Bump the epoch so the
            // scheduled finish event is ignored.
            let ran = now
                .saturating_since(st.task_state.started_at[victim])
                .as_secs();
            st.task_state.remaining_secs[victim] =
                (st.task_state.remaining_secs[victim] - ran).max(1.0);
            st.task_state.epoch[victim] += 1;
            st.task_state.queued_since[victim] = now;
            st.enqueue_pending(PendKey::of(vt), victim);
            st.evictions += 1;
        }
        let ok = st.cluster.allocate(machine, task.demand, now);
        debug_assert!(ok, "eviction freed enough room");
        self.commit_placement(st, tasks, idx, machine, now);
        true
    }

    fn drain(&mut self, st: &mut RunState, tasks: &[Task], now: SimTime) {
        let mut failures = 0usize;
        let mut placed_keys: Vec<PendKey> = Vec::new();
        // Head-of-line guard: once a (priority, demand-shape) fails in
        // this pass, later tasks with the same (quantized) shape are
        // skipped without re-attempting placement, so a wall of blocked
        // large tasks cannot starve placeable small ones further down
        // the queue.
        let mut failed_shapes: BTreeSet<(u8, u64, u64)> = BTreeSet::new();
        let shape = |task: &Task| {
            (
                task.priority.level(),
                (task.demand.cpu * 512.0).ceil() as u64,
                (task.demand.mem * 512.0).ceil() as u64,
            )
        };
        // Cheap capacity pre-filter: the per-type maximum free vector at
        // pass start only shrinks as the pass places tasks, so "does not
        // fit under the snapshot" is a safe O(types) reject. Preemptable
        // capacity is not covered by the filter, so non-gratis tasks
        // bypass it. O(types) on an indexed cluster, a machine scan on
        // the reference engine — identical values either way.
        let max_free: Vec<Resources> = (0..st.cluster.catalog().len())
            .map(|ty| st.cluster.max_free_of_type(MachineTypeId(ty)))
            .collect();
        // Preemption scans every machine, so drains get a small budget
        // of attempts per pass; arrivals always may preempt.
        const PREEMPT_BUDGET: usize = 16;
        let mut preempt_attempts = 0usize;
        let keys: Vec<(PendKey, usize)> = st.pending.iter().map(|(&k, &v)| (k, v)).collect();
        for (key, idx) in keys {
            if failures >= self.config.drain_failure_limit {
                break;
            }
            let task = &tasks[idx];
            if failed_shapes.contains(&shape(task)) {
                continue;
            }
            let fits = max_free.iter().any(|f| task.demand.fits_within(*f));
            let placed = if fits && self.try_place_plain(st, tasks, idx, now) {
                true
            } else if self.config.preemption
                && task.priority.group() != PriorityGroup::Gratis
                && preempt_attempts < PREEMPT_BUDGET
            {
                preempt_attempts += 1;
                self.try_preempt_place(st, tasks, idx, now)
            } else {
                false
            };
            if placed {
                placed_keys.push(key);
            } else if fits || task.priority.group() != PriorityGroup::Gratis {
                failed_shapes.insert(shape(task));
                failures += 1;
            }
        }
        for key in placed_keys {
            st.pending.remove(&key);
        }
    }
}

/// Machines an injected crash may hit: busy active machines when any
/// exist (a crash that lands on an empty machine tests little),
/// otherwise any active machine.
fn crash_candidates(st: &RunState) -> Vec<MachineId> {
    let busy: Vec<MachineId> = st
        .cluster
        .machines()
        .iter()
        .filter(|m| m.is_active() && m.running_tasks() > 0)
        .map(|m| m.id())
        .collect();
    if !busy.is_empty() {
        return busy;
    }
    st.cluster
        .machines()
        .iter()
        .filter(|m| m.is_active())
        .map(|m| m.id())
        .collect()
}

/// Machines a spot reclaim may take: active machines of the priced
/// type, busy ones preferred (mirrors [`crash_candidates`], restricted
/// to one type).
fn spot_candidates(st: &RunState, ty: MachineTypeId) -> Vec<MachineId> {
    let busy: Vec<MachineId> = st
        .cluster
        .machines()
        .iter()
        .filter(|m| m.type_id() == ty && m.is_active() && m.running_tasks() > 0)
        .map(|m| m.id())
        .collect();
    if !busy.is_empty() {
        return busy;
    }
    st.cluster
        .machines()
        .iter()
        .filter(|m| m.type_id() == ty && m.is_active())
        .map(|m| m.id())
        .collect()
}

/// Finds the machine where evicting the fewest lower-priority-group
/// tasks makes room for `task`. Returns the machine and the victim set.
fn find_preemption(st: &RunState, tasks: &[Task], task: &Task) -> Option<(MachineId, Vec<usize>)> {
    let group = task.priority.group().index();
    let mut best: Option<(MachineId, Vec<usize>)> = None;
    for m in st.cluster.machines() {
        if !m.is_on() || !task.demand.fits_within(m.capacity()) {
            continue;
        }
        let mut lower: Vec<usize> = st
            .placements
            .on(m.id())
            .iter()
            .copied()
            .filter(|&i| tasks[i].priority.group().index() < group)
            .collect();
        if lower.is_empty() {
            continue;
        }
        // Evict the largest victims first to minimize the victim count.
        lower.sort_by(|&a, &b| {
            f64::total_cmp(
                &tasks[b].demand.sum_components(),
                &tasks[a].demand.sum_components(),
            )
        });
        let mut freed = m.free();
        let mut victims = Vec::new();
        for i in lower {
            if task.demand.fits_within(freed) {
                break;
            }
            freed += tasks[i].demand;
            victims.push(i);
        }
        if task.demand.fits_within(freed)
            && best.as_ref().is_none_or(|(_, b)| victims.len() < b.len())
        {
            let done = victims.len() == 1;
            best = Some((m.id(), victims));
            if done {
                break; // cannot do better than a single victim
            }
        }
    }
    best
}

/// Algorithm 1's re-packing step: for every machine type above its
/// target, migrate all tasks off the least-loaded machines onto busier
/// ones and power the emptied machines down. Returns the number of task
/// migrations performed.
fn repack(
    cluster: &mut Cluster,
    targets: &[usize],
    placements: &mut Placements,
    tasks: &[Task],
    now: SimTime,
) -> usize {
    const MOVE_CAP: usize = 2000;
    let mut moved = 0usize;
    for (m_ty, &target) in targets.iter().enumerate() {
        let ty = MachineTypeId(m_ty);
        let ids: Vec<MachineId> = cluster.machines_of_type(ty).to_vec();
        let active = ids
            .iter()
            .filter(|id| cluster.machine(**id).is_active())
            .count();
        let mut excess = active.saturating_sub(target);
        if excess == 0 {
            continue;
        }
        // Drain the least-loaded busy machines first (idle ones were
        // already powered off by the target application).
        let mut candidates: Vec<MachineId> = ids
            .into_iter()
            .filter(|id| cluster.machine(*id).is_on() && cluster.machine(*id).running_tasks() > 0)
            .collect();
        candidates.sort_by_key(|id| cluster.machine(*id).running_tasks());
        for src in candidates {
            if excess == 0 || moved >= MOVE_CAP {
                break;
            }
            let resident = placements.on(src).to_vec();
            if resident.is_empty() {
                continue;
            }
            let src_load = cluster.machine(src).running_tasks();
            // Two-phase: find a destination for every resident task on a
            // snapshot of free capacities; commit only if all fit.
            let mut free: Vec<(MachineId, Resources, usize)> = cluster
                .machines()
                .iter()
                .filter(|m| m.id() != src && m.is_on() && m.running_tasks() >= src_load)
                .map(|m| (m.id(), m.free(), m.running_tasks()))
                .collect();
            // Consolidate onto the busiest machines first.
            free.sort_by_key(|m| std::cmp::Reverse(m.2));
            let mut plan: Vec<(usize, MachineId)> = Vec::new();
            let mut feasible = true;
            for &idx in &resident {
                let demand = tasks[idx].demand;
                match free
                    .iter_mut()
                    .find(|(_, room, _)| demand.fits_within(*room))
                {
                    Some((dst, room, _)) => {
                        *room -= demand;
                        plan.push((idx, *dst));
                    }
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if !feasible || plan.len() + moved > MOVE_CAP {
                continue;
            }
            for (idx, dst) in plan {
                let ok = cluster.migrate(src, dst, tasks[idx].demand, now);
                debug_assert!(ok, "snapshot said the move fits");
                placements.relocate(idx, dst);
                moved += 1;
            }
            if cluster.power_off_machine(src, now) {
                excess -= 1;
            }
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{ControlDecision, NullController};
    use crate::scheduler::FirstFit;
    use harmony_trace::{TraceConfig, TraceGenerator};

    fn small_trace() -> Trace {
        TraceGenerator::new(TraceConfig::small().with_seed(11)).generate()
    }

    fn conservation(report: &SimReport, trace: &Trace) {
        assert_eq!(
            report.tasks_completed
                + report.tasks_running_at_end
                + report.tasks_pending_at_end
                + report.tasks_unschedulable
                + report.tasks_failed,
            trace.len()
        );
    }

    #[test]
    fn conservation_of_tasks() {
        let trace = small_trace();
        let config = SimulationConfig::new(MachineCatalog::table2().scaled(50)).all_machines_on();
        let report = Simulation::new(config, &trace, Box::new(FirstFit)).run();
        conservation(&report, &trace);
        assert!(report.tasks_completed > 0);
    }

    #[test]
    fn ample_capacity_means_zero_delay() {
        let trace = small_trace();
        let config = SimulationConfig::new(MachineCatalog::table2().scaled(20)).all_machines_on();
        let report = Simulation::new(config, &trace, Box::new(FirstFit)).run();
        let stats = report.delay_stats_overall();
        assert!(
            stats.immediate_fraction > 0.95,
            "nearly all tasks should schedule immediately, got {}",
            stats.immediate_fraction
        );
        assert_eq!(report.tasks_pending_at_end, 0);
        assert_eq!(report.evictions, 0, "no pressure, no evictions");
    }

    #[test]
    fn starved_cluster_queues_tasks() {
        let trace = small_trace();
        let config = SimulationConfig::new(MachineCatalog::table2().scaled(50));
        let report = Simulation::new(config, &trace, Box::new(FirstFit)).run();
        assert_eq!(report.tasks_completed, 0);
        assert_eq!(
            report.tasks_pending_at_end + report.tasks_unschedulable,
            trace.len()
        );
        assert_eq!(report.total_energy_wh, 0.0);
    }

    #[test]
    fn energy_scales_with_active_machines() {
        let trace = small_trace();
        let all_on = SimulationConfig::new(MachineCatalog::table2().scaled(50)).all_machines_on();
        let on_report = Simulation::new(all_on, &trace, Box::new(FirstFit)).run();
        let half = SimulationConfig::new(MachineCatalog::table2().scaled(100)).all_machines_on();
        let half_report = Simulation::new(half, &trace, Box::new(FirstFit)).run();
        assert!(on_report.total_energy_wh > half_report.total_energy_wh);
        assert!(on_report.energy_cost_dollars > 0.0);
    }

    #[test]
    fn controller_tick_runs_and_samples_recorded() {
        let trace = small_trace();
        let config = SimulationConfig::new(MachineCatalog::table2().scaled(50))
            .all_machines_on()
            .sample_interval(SimDuration::from_mins(10.0));
        let report = Simulation::new(config, &trace, Box::new(FirstFit))
            .with_controller(Box::new(NullController))
            .run();
        // 2-hour trace, 10-min samples → 13 samples (0..=120 min).
        assert_eq!(report.series.len(), 13);
        assert!(report
            .series
            .iter()
            .all(|p| p.active_per_type.iter().sum::<usize>() > 0));
    }

    /// A controller that powers everything on at the first tick.
    #[derive(Debug)]
    struct AllOnController;

    impl Controller for AllOnController {
        fn control_period(&self) -> SimDuration {
            SimDuration::from_mins(10.0)
        }

        fn decide(&mut self, observation: &Observation<'_>) -> ControlDecision {
            ControlDecision::targets(
                observation
                    .cluster
                    .catalog()
                    .iter()
                    .map(|t| t.count)
                    .collect(),
            )
        }
    }

    #[test]
    fn controller_can_bring_capacity_up() {
        let trace = small_trace();
        let config = SimulationConfig::new(MachineCatalog::table2().scaled(50));
        let report = Simulation::new(config, &trace, Box::new(FirstFit))
            .with_controller(Box::new(AllOnController))
            .run();
        assert!(report.tasks_completed > 0);
        assert!(report.switch_count > 0);
        assert!(report.switch_cost_dollars > 0.0);
        let last = report.series.last().unwrap();
        assert_eq!(
            last.active_per_type.iter().sum::<usize>(),
            140 + 30 + 20 + 10
        );
    }

    /// A controller that oscillates capacity to exercise off/on churn.
    #[derive(Debug)]
    struct FlipFlopController {
        tick: usize,
    }

    impl Controller for FlipFlopController {
        fn control_period(&self) -> SimDuration {
            SimDuration::from_mins(15.0)
        }

        fn decide(&mut self, observation: &Observation<'_>) -> ControlDecision {
            self.tick += 1;
            let full: Vec<usize> = observation
                .cluster
                .catalog()
                .iter()
                .map(|t| t.count)
                .collect();
            if self.tick.is_multiple_of(2) {
                ControlDecision::targets(vec![0; full.len()])
            } else {
                ControlDecision::targets(full)
            }
        }
    }

    #[test]
    fn churn_is_counted_and_stale_boots_ignored() {
        let trace = small_trace();
        let config = SimulationConfig::new(MachineCatalog::table2().scaled(200));
        let report = Simulation::new(config, &trace, Box::new(FirstFit))
            .with_controller(Box::new(FlipFlopController { tick: 0 }))
            .run();
        assert!(
            report.switch_count >= 4,
            "switches = {}",
            report.switch_count
        );
        conservation(&report, &trace);
    }

    #[test]
    fn unschedulable_tasks_are_counted() {
        let catalog = MachineCatalog::table2().scaled(50);
        let trace = small_trace();
        let big = trace
            .tasks()
            .iter()
            .filter(|t| !catalog.iter().any(|m| t.demand.fits_within(m.capacity)))
            .count();
        let config = SimulationConfig::new(catalog).all_machines_on();
        let report = Simulation::new(config, &trace, Box::new(FirstFit)).run();
        assert_eq!(report.tasks_unschedulable, big);
    }

    #[test]
    fn preemption_prioritizes_production_under_pressure() {
        // A tight cluster: production tasks must evict gratis ones.
        let trace = small_trace();
        let catalog = MachineCatalog::table2().scaled(300); // 24/5/4/2
        let with = Simulation::new(
            SimulationConfig::new(catalog.clone()).all_machines_on(),
            &trace,
            Box::new(FirstFit),
        )
        .run();
        let without = Simulation::new(
            SimulationConfig::new(catalog)
                .all_machines_on()
                .without_preemption(),
            &trace,
            Box::new(FirstFit),
        )
        .run();
        conservation(&with, &trace);
        conservation(&without, &trace);
        assert!(with.evictions > 0, "pressure should trigger evictions");
        assert_eq!(without.evictions, 0);
        let prod_with = with.delay_stats(PriorityGroup::Production);
        let prod_without = without.delay_stats(PriorityGroup::Production);
        assert!(
            prod_with.immediate_fraction >= prod_without.immediate_fraction,
            "preemption must not hurt production immediacy: {} vs {}",
            prod_with.immediate_fraction,
            prod_without.immediate_fraction
        );
        // And preemption improves production's delay tail relative to
        // running without it (Fig. 4's mechanism: priorities let
        // production jump the line).
        assert!(
            prod_with.mean <= prod_without.mean,
            "preemption should reduce production mean delay: {} vs {}",
            prod_with.mean,
            prod_without.mean
        );
    }

    #[test]
    fn crash_storm_conserves_tasks_and_records_faults() {
        use crate::faults::FaultPlan;
        let trace = small_trace();
        let plan = FaultPlan::scenario("crash-storm", 7, trace.span()).unwrap();
        let config = SimulationConfig::new(MachineCatalog::table2().scaled(50))
            .all_machines_on()
            .with_faults(plan);
        let report = Simulation::new(config, &trace, Box::new(FirstFit)).run();
        conservation(&report, &trace);
        assert!(
            report
                .faults
                .iter()
                .any(|f| matches!(f.kind, FaultRecordKind::MachineCrash { .. })),
            "crash-storm should land at least one crash"
        );
        // Every crash eventually recovers (downtimes are well inside the
        // span for this scenario, though late crashes may recover after
        // the horizon).
        let crashes = report
            .faults
            .iter()
            .filter(|f| matches!(f.kind, FaultRecordKind::MachineCrash { .. }))
            .count();
        let recoveries = report
            .faults
            .iter()
            .filter(|f| matches!(f.kind, FaultRecordKind::MachineRecovered { .. }))
            .count();
        assert!(recoveries <= crashes);
    }

    #[test]
    fn fault_plans_are_deterministic() {
        use crate::faults::FaultPlan;
        let trace = small_trace();
        let run = |seed: u64| {
            let plan = FaultPlan::scenario("mixed", seed, trace.span()).unwrap();
            let config = SimulationConfig::new(MachineCatalog::table2().scaled(50))
                .all_machines_on()
                .with_faults(plan);
            Simulation::new(config, &trace, Box::new(FirstFit)).run()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.tasks_completed, b.tasks_completed);
        assert_eq!(a.tasks_failed, b.tasks_failed);
    }

    #[test]
    fn arrival_burst_warps_but_conserves() {
        use crate::faults::{FaultKind, FaultPlan};
        let trace = small_trace();
        let plan = FaultPlan::new(3).with_event(
            SimTime::from_secs(600.0),
            FaultKind::ArrivalBurst {
                window: SimDuration::from_mins(30.0),
            },
        );
        let config = SimulationConfig::new(MachineCatalog::table2().scaled(50))
            .all_machines_on()
            .with_faults(plan);
        let report = Simulation::new(config, &trace, Box::new(FirstFit)).run();
        conservation(&report, &trace);
        let warped = report.faults.iter().find_map(|f| match f.kind {
            FaultRecordKind::ArrivalBurst { tasks_warped } => Some(tasks_warped),
            _ => None,
        });
        assert!(
            warped.unwrap_or(0) > 0,
            "a 30-minute window should catch arrivals"
        );
    }

    #[test]
    fn retry_budget_zero_fails_interrupted_tasks() {
        use crate::faults::{FaultKind, FaultPlan};
        let trace = small_trace();
        let plan = FaultPlan::new(9).with_event(
            SimTime::from_secs(1800.0),
            FaultKind::TaskEviction { count: 5 },
        );
        let config = SimulationConfig::new(MachineCatalog::table2().scaled(50))
            .all_machines_on()
            .with_faults(plan)
            .max_task_retries(0);
        let report = Simulation::new(config, &trace, Box::new(FirstFit)).run();
        conservation(&report, &trace);
        let evicted_or_failed: usize = report
            .faults
            .iter()
            .map(|f| match f.kind {
                FaultRecordKind::TaskEviction { evicted, failed } => evicted + failed,
                _ => 0,
            })
            .sum();
        if evicted_or_failed > 0 {
            assert_eq!(
                report.tasks_failed, evicted_or_failed,
                "budget 0 drops every victim"
            );
        }
    }

    #[test]
    fn evicted_tasks_eventually_complete() {
        // Moderate pressure cluster; trace ends with idle tail so
        // requeued tasks can finish. Use a short trace with a long tail
        // by shrinking the span's arrival window via a small trace and
        // bigger catalog.
        let trace = small_trace();
        let catalog = MachineCatalog::table2().scaled(150);
        let report = Simulation::new(
            SimulationConfig::new(catalog).all_machines_on(),
            &trace,
            Box::new(FirstFit),
        )
        .run();
        conservation(&report, &trace);
        if report.evictions > 0 {
            // Evicted tasks either completed or are still accounted for.
            assert!(report.tasks_completed > 0);
        }
    }
}

//! Property-based tests for the discrete-event engine across random
//! traces and cluster scales.

use harmony_model::{MachineCatalog, SimDuration};
use harmony_sim::{BestFit, FirstFit, Scheduler, Simulation, SimulationConfig};
use harmony_trace::{TraceConfig, TraceGenerator};
use proptest::prelude::*;

fn trace(seed: u64, minutes: f64) -> harmony_trace::Trace {
    TraceGenerator::new(
        TraceConfig::small()
            .with_span(SimDuration::from_mins(minutes))
            .with_seed(seed),
    )
    .generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Task conservation holds for any seed, scale, scheduler, and
    /// preemption setting.
    #[test]
    fn conservation_universal(
        seed in 0u64..10_000,
        divisor in prop::sample::select(vec![60usize, 150, 400]),
        preemption in any::<bool>(),
        best_fit in any::<bool>(),
    ) {
        let trace = trace(seed, 40.0);
        let catalog = MachineCatalog::table2().scaled(divisor);
        let mut config = SimulationConfig::new(catalog).all_machines_on();
        if !preemption {
            config = config.without_preemption();
        }
        let scheduler: Box<dyn Scheduler> =
            if best_fit { Box::new(BestFit) } else { Box::new(FirstFit) };
        let report = Simulation::new(config, &trace, scheduler).run();
        prop_assert_eq!(
            report.tasks_completed
                + report.tasks_running_at_end
                + report.tasks_pending_at_end
                + report.tasks_unschedulable,
            trace.len()
        );
        // Delay samples: at least one per completed/running task's first
        // placement; per-attempt recording may add more (evictions).
        let recorded: usize = report.delays_by_group.iter().map(Vec::len).sum();
        prop_assert!(recorded >= report.tasks_completed + report.tasks_running_at_end);
        // No preemption → no evictions.
        if !preemption {
            prop_assert_eq!(report.evictions, 0);
        }
        // Energy and cost are consistent (flat default tariff).
        prop_assert!(report.total_energy_wh >= 0.0);
        prop_assert!(
            (report.energy_cost_dollars - report.total_energy_wh * 0.1 / 1000.0).abs()
                < 1e-6 * (1.0 + report.energy_cost_dollars)
        );
    }

    /// A strictly larger always-on cluster never consumes less energy.
    #[test]
    fn energy_monotone_in_cluster_size(seed in 0u64..10_000) {
        let trace = trace(seed, 30.0);
        let small = Simulation::new(
            SimulationConfig::new(MachineCatalog::table2().scaled(200)).all_machines_on(),
            &trace,
            Box::new(FirstFit),
        )
        .run();
        let large = Simulation::new(
            SimulationConfig::new(MachineCatalog::table2().scaled(100)).all_machines_on(),
            &trace,
            Box::new(FirstFit),
        )
        .run();
        prop_assert!(large.total_energy_wh >= small.total_energy_wh);
        // More capacity never schedules fewer tasks.
        prop_assert!(large.tasks_completed >= small.tasks_completed);
    }

    /// Delays are non-negative and finite everywhere.
    #[test]
    fn delays_are_sane(seed in 0u64..10_000) {
        let trace = trace(seed, 40.0);
        let report = Simulation::new(
            SimulationConfig::new(MachineCatalog::table2().scaled(300)).all_machines_on(),
            &trace,
            Box::new(FirstFit),
        )
        .run();
        for group in &report.delays_by_group {
            for &d in group {
                prop_assert!(d.is_finite() && d >= 0.0);
                prop_assert!(d <= trace.span().as_secs());
            }
        }
    }
}

//! Property: the indexed engine (calendar event queue + free-capacity
//! segment trees, `EngineMode::Indexed`) is a pure acceleration of the
//! reference engine (`BinaryHeap` + linear machine scans,
//! `EngineMode::Reference`, the seed behavior). For any seeded trace —
//! with or without a fault plan — the two must produce **byte-identical**
//! serialized `SimReport`s.
//!
//! The runs use a capacity-reactive controller whose decisions depend on
//! the *content* of every observation view (pending, arrived, running),
//! so a view that iterated the wrong tasks, the wrong order, or the
//! wrong count would cascade into different power decisions and a
//! different report — not just a different wall-clock.

use harmony_model::{MachineCatalog, SimDuration};
use harmony_sim::{
    ControlDecision, Controller, EngineMode, FaultPlan, FirstFit, Observation, Simulation,
    SimulationConfig,
};
use harmony_trace::{Trace, TraceConfig, TraceGenerator};

/// Sizes pool capacity from what it sees: total pending + arrived demand
/// per period, plus the running census. Every observation view feeds the
/// decision, so view-content bugs change the report bytes.
#[derive(Debug)]
struct ReactiveController {
    populations: Vec<usize>,
}

impl Controller for ReactiveController {
    fn control_period(&self) -> SimDuration {
        SimDuration::from_mins(20.0)
    }

    fn decide(&mut self, observation: &Observation<'_>) -> ControlDecision {
        let pending_cpu: f64 = observation.pending.iter().map(|t| t.demand.cpu).sum();
        let arrived_cpu: f64 = observation.arrived_last_period.iter().map(|t| t.demand.cpu).sum();
        let running = observation.running.len();
        // Rough machines-worth of demand, spread over the types; the
        // exact shape does not matter, only that it is a deterministic
        // function of all three views.
        let want = ((pending_cpu + 2.0 * arrived_cpu) * 4.0).ceil() as usize + running / 8 + 1;
        let targets = self
            .populations
            .iter()
            .map(|&pop| want.min(pop))
            .collect();
        if running.is_multiple_of(2) {
            ControlDecision::targets(targets)
        } else {
            ControlDecision::targets_with_repack(targets)
        }
    }
}

fn run_once(trace: &Trace, divisor: usize, fault_seed: Option<u64>, mode: EngineMode) -> String {
    let catalog = MachineCatalog::table2().scaled(divisor);
    let mut config = SimulationConfig::new(catalog.clone())
        .all_machines_on()
        .engine_mode(mode);
    if let Some(seed) = fault_seed {
        let plan = FaultPlan::scenario("mixed", seed, trace.span()).expect("known scenario");
        config = config.with_faults(plan);
    }
    let populations: Vec<usize> =
        catalog.iter().map(|ty| ty.count).collect();
    let report = Simulation::new(config, trace, Box::new(FirstFit))
        .with_controller(Box::new(ReactiveController { populations }))
        .run();
    serde_json::to_string(&report).expect("report serializes")
}

/// One workload scale: a trace config plus a catalog divisor.
fn scales() -> Vec<(&'static str, TraceConfig, usize)> {
    vec![
        ("quick", TraceConfig::small(), 100),
        (
            "default",
            TraceConfig::small().with_span(SimDuration::from_hours(6.0)),
            50,
        ),
    ]
}

#[test]
fn engines_agree_without_faults() {
    for (name, config, divisor) in scales() {
        for seed in [7u64, 2013, 999_983] {
            let trace = TraceGenerator::new(config.clone().with_seed(seed)).generate();
            let reference = run_once(&trace, divisor, None, EngineMode::Reference);
            let indexed = run_once(&trace, divisor, None, EngineMode::Indexed);
            assert_eq!(
                reference, indexed,
                "engines diverged: scale {name}, seed {seed}, no faults"
            );
        }
    }
}

#[test]
fn engines_agree_under_fault_plans() {
    for (name, config, divisor) in scales() {
        for seed in [7u64, 2013, 999_983] {
            let trace = TraceGenerator::new(config.clone().with_seed(seed)).generate();
            let reference = run_once(&trace, divisor, Some(seed), EngineMode::Reference);
            let indexed = run_once(&trace, divisor, Some(seed), EngineMode::Indexed);
            assert_eq!(
                reference, indexed,
                "engines diverged: scale {name}, seed {seed}, fault scenario mixed"
            );
        }
    }
}

#[test]
fn default_mode_is_indexed() {
    // The accelerated engine is the default; `Reference` exists as the
    // oracle. A silent default flip would invalidate the scaling claims.
    let trace = TraceGenerator::new(TraceConfig::small().with_seed(3)).generate();
    let default_run = {
        let config = SimulationConfig::new(MachineCatalog::table2().scaled(100)).all_machines_on();
        let report = Simulation::new(config, &trace, Box::new(FirstFit)).run();
        serde_json::to_string(&report).expect("report serializes")
    };
    let indexed = {
        let config = SimulationConfig::new(MachineCatalog::table2().scaled(100))
            .all_machines_on()
            .engine_mode(EngineMode::Indexed);
        let report = Simulation::new(config, &trace, Box::new(FirstFit)).run();
        serde_json::to_string(&report).expect("report serializes")
    };
    assert_eq!(default_run, indexed);
}

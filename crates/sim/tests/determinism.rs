//! Regression: the event loop must be bit-reproducible.
//!
//! Two identically-seeded runs have to produce byte-identical
//! `SimReport`s — checkpoint/resume replay (DESIGN.md §8) and the
//! parallel-pipeline plan equality tests both rest on this, and it is
//! exactly the invariant hash-map iteration order would silently break
//! (harmony-lint's `nondeterministic-iteration` rule guards the source
//! side; this test guards the behavior).

use harmony_model::MachineCatalog;
use harmony_sim::{FaultPlan, FirstFit, Simulation, SimulationConfig};
use harmony_trace::{Trace, TraceConfig, TraceGenerator};

fn run_once(trace: &Trace, seed: u64) -> String {
    let plan = FaultPlan::scenario("mixed", seed, trace.span()).expect("known scenario");
    let config = SimulationConfig::new(MachineCatalog::table2().scaled(50))
        .all_machines_on()
        .with_faults(plan);
    let report = Simulation::new(config, trace, Box::new(FirstFit)).run();
    serde_json::to_string(&report).expect("report serializes")
}

#[test]
fn identically_seeded_runs_are_byte_identical() {
    let trace = TraceGenerator::new(TraceConfig::small().with_seed(11)).generate();
    let a = run_once(&trace, 42);
    let b = run_once(&trace, 42);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must reproduce the same report bytes");
}

#[test]
fn different_seeds_diverge() {
    // Sanity check that the comparison above has teeth: a different
    // fault seed must actually change the serialized report.
    let trace = TraceGenerator::new(TraceConfig::small().with_seed(11)).generate();
    let a = run_once(&trace, 42);
    let c = run_once(&trace, 43);
    assert_ne!(a, c, "fault seed must influence the run");
}

//! Property-based and scenario tests for the fault-injection subsystem:
//! no fault plan may violate task conservation or crash the engine.

use harmony_model::{MachineCatalog, MachineTypeId, SimDuration, SimTime};
use harmony_sim::{
    FaultKind, FaultPlan, FaultRecordKind, FirstFit, SimReport, Simulation, SimulationConfig,
    SCENARIOS,
};
use harmony_trace::{Trace, TraceConfig, TraceGenerator};
use proptest::prelude::*;

fn trace(seed: u64) -> Trace {
    TraceGenerator::new(
        TraceConfig::small()
            .with_span(SimDuration::from_mins(40.0))
            .with_seed(seed),
    )
    .generate()
}

fn conserved(report: &SimReport, trace: &Trace) -> bool {
    report.tasks_completed
        + report.tasks_running_at_end
        + report.tasks_pending_at_end
        + report.tasks_unschedulable
        + report.tasks_failed
        == trace.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// `submitted == completed + running + pending + unschedulable +
    /// failed` under every named scenario and seed: faults may delay or
    /// drop tasks, never lose them.
    #[test]
    fn conservation_under_any_fault_plan(
        trace_seed in 0u64..5_000,
        fault_seed in 0u64..5_000,
        scenario in prop::sample::select(SCENARIOS.to_vec()),
        divisor in prop::sample::select(vec![60usize, 150, 400]),
    ) {
        let trace = trace(trace_seed);
        let plan = FaultPlan::scenario(scenario, fault_seed, trace.span())
            .expect("named scenario exists");
        let catalog = MachineCatalog::table2().scaled(divisor);
        let config = SimulationConfig::new(catalog).all_machines_on().with_faults(plan);
        let report = Simulation::new(config, &trace, Box::new(FirstFit)).run();
        prop_assert!(
            conserved(&report, &trace),
            "conservation violated for {} (trace {}, faults {}): {} + {} + {} + {} + {} != {}",
            scenario, trace_seed, fault_seed,
            report.tasks_completed, report.tasks_running_at_end,
            report.tasks_pending_at_end, report.tasks_unschedulable,
            report.tasks_failed, trace.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Spot-market reclaims staged through the `FaultInjector` obey the
    /// same conservation law as every other fault: whatever mix of
    /// types, counts, and downtimes the market throws, no task is lost
    /// or duplicated.
    #[test]
    fn conservation_under_spot_evictions(
        trace_seed in 0u64..5_000,
        fault_seed in 0u64..5_000,
        ty in 0usize..4,
        count in 1usize..6,
        down_secs in 120.0f64..1800.0,
    ) {
        let trace = trace(trace_seed);
        let span = trace.span().as_secs();
        let mut plan = FaultPlan::new(fault_seed);
        for i in 0..3 {
            plan = plan.with_event(
                SimTime::from_secs(span * (0.2 + 0.2 * i as f64)),
                FaultKind::SpotEviction {
                    machine_type: MachineTypeId(ty),
                    count,
                    down: SimDuration::from_secs(down_secs),
                },
            );
        }
        let catalog = MachineCatalog::table2().scaled(150);
        let config = SimulationConfig::new(catalog).all_machines_on().with_faults(plan);
        let report = Simulation::new(config, &trace, Box::new(FirstFit)).run();
        prop_assert!(
            conserved(&report, &trace),
            "spot conservation violated (trace {}, faults {}, ty {}): {} + {} + {} + {} + {} != {}",
            trace_seed, fault_seed, ty,
            report.tasks_completed, report.tasks_running_at_end,
            report.tasks_pending_at_end, report.tasks_unschedulable,
            report.tasks_failed, trace.len()
        );
        // Every recorded reclaim stayed inside the event's budget and
        // hit only the priced type.
        for f in &report.faults {
            if let FaultRecordKind::SpotEviction { machine_type, machines, .. } = f.kind {
                prop_assert_eq!(machine_type, MachineTypeId(ty));
                prop_assert!(machines >= 1 && machines <= count);
            }
        }
    }
}

/// A spot reclaim with a generous retry budget re-queues every resident
/// task, and a second identical run reproduces the records byte for
/// byte.
#[test]
fn spot_eviction_requeues_and_is_deterministic() {
    let trace = trace(77);
    let run = || {
        let plan = FaultPlan::new(5).with_event(
            SimTime::from_secs(900.0),
            FaultKind::SpotEviction {
                machine_type: MachineTypeId(0),
                count: 4,
                down: SimDuration::from_mins(10.0),
            },
        );
        let config = SimulationConfig::new(MachineCatalog::table2().scaled(150))
            .all_machines_on()
            .with_faults(plan)
            .max_task_retries(100);
        Simulation::new(config, &trace, Box::new(FirstFit)).run()
    };
    let report = run();
    assert!(conserved(&report, &trace));
    let reclaim = report
        .faults
        .iter()
        .find_map(|f| match f.kind {
            FaultRecordKind::SpotEviction { machines, evicted, failed, .. } => {
                Some((machines, evicted, failed))
            }
            _ => None,
        })
        .expect("the scheduled reclaim fired");
    assert!(reclaim.0 >= 1 && reclaim.0 <= 4);
    assert_eq!(reclaim.2, 0, "a generous retry budget fails no task");
    assert_eq!(report.tasks_failed, 0);
    let again = run();
    assert_eq!(report.faults, again.faults, "spot reclaims not deterministic");
    assert_eq!(report.tasks_completed, again.tasks_completed);
}

/// A machine crash mid-run re-queues the tasks it was hosting (suspend/
/// resume) rather than dropping them: with a generous retry budget every
/// interrupted task is still accounted for as completed, running, or
/// pending — never failed.
#[test]
fn mid_run_crash_requeues_tasks() {
    let trace = trace(77);
    // One crash right in the thick of arrivals, long enough downtime to
    // matter, on a small cluster so the victim machine is busy.
    let plan = FaultPlan::new(5).with_event(
        SimTime::from_secs(900.0),
        FaultKind::MachineCrash {
            down: SimDuration::from_mins(10.0),
        },
    );
    let catalog = MachineCatalog::table2().scaled(150);
    let config = SimulationConfig::new(catalog)
        .all_machines_on()
        .with_faults(plan)
        .max_task_retries(100);
    let report = Simulation::new(config, &trace, Box::new(FirstFit)).run();
    assert!(conserved(&report, &trace));
    let crash = report
        .faults
        .iter()
        .find_map(|f| match f.kind {
            FaultRecordKind::MachineCrash {
                evicted, failed, ..
            } => Some((evicted, failed)),
            _ => None,
        })
        .expect("the scheduled crash fired");
    assert_eq!(crash.1, 0, "a generous retry budget fails no task");
    assert!(crash.0 > 0, "the crashed machine was hosting tasks");
    assert_eq!(report.tasks_failed, 0);
    // The interrupted tasks were re-queued, not dropped: nothing is
    // missing, and the run still completes work after the crash.
    assert!(report.tasks_completed > 0);
}

/// The same fault plan twice gives byte-identical fault records —
/// injection is fully deterministic.
#[test]
fn scenarios_are_deterministic_across_runs() {
    let trace = trace(3);
    for scenario in SCENARIOS {
        let run = || {
            let plan = FaultPlan::scenario(scenario, 11, trace.span()).unwrap();
            let config = SimulationConfig::new(MachineCatalog::table2().scaled(150))
                .all_machines_on()
                .with_faults(plan);
            Simulation::new(config, &trace, Box::new(FirstFit)).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.faults, b.faults, "scenario {scenario} not deterministic");
        assert_eq!(a.tasks_completed, b.tasks_completed);
    }
}

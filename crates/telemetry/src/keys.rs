//! Central registry of every metric name the workspace records.
//!
//! Telemetry names are stringly typed at the call sites, so nothing in
//! the type system stops a producer renaming `lp.pivots` while a
//! consumer (the `metrics` verb, `replay --metrics`, the smoke script)
//! keeps reading the old spelling. This module is the single source of
//! truth: every key literal used anywhere in the workspace must appear
//! here exactly once, and every entry here must be documented in
//! DESIGN.md §9.2. `harmony-lint`'s `metric-name-drift` rule enforces
//! both directions as a CI gate.
//!
//! Keep the list sorted; `registry_is_sorted_and_unique` below and the
//! lint's duplicate check both fail on violations.

/// Every concrete metric name the workspace records or reads.
pub const REGISTERED_KEYS: &[&str] = &[
    "cost.cumulative_dollars",
    "cost.dollar_solves",
    "cost.plan_rental_dollars",
    "cost.plan_slo_dollars",
    "cost.spot_fraction",
    "forecast.degraded",
    "forecast.tier.arima",
    "forecast.tier.last_observation",
    "forecast.tier.moving_average",
    "lp.failures",
    "lp.phase1_pivots",
    "lp.pivots",
    "lp.solves",
    "lp.warm_start_hits",
    "lp.warm_start_repair_fallbacks",
    "lp.warm_start_structural_fallbacks",
    "monitor.dropped_arrivals",
    "pipeline.classify_seconds",
    "pipeline.errors",
    "pipeline.forecast_seconds",
    "pipeline.lp_seconds",
    "pipeline.period_seconds",
    "pipeline.rounding_seconds",
    "pipeline.sizing_seconds",
    "pipeline.ticks",
    "pipeline.workers",
    "server.errors",
    "server.request_seconds",
    "server.requests",
    "server.shed_total",
    "server.ticker_restarts",
    "server.timeout_total",
    "sim.controller_seconds",
    "sim.events.arrival",
    "sim.events.boot",
    "sim.events.control",
    "sim.events.fault",
    "sim.events.finish",
    "sim.events.sample",
    "sim.events_per_sec",
    "sim.heap_peak",
    "sim.pending_peak",
];

/// Prefixes under which names are minted dynamically (one counter per
/// protocol verb). A literal starting with one of these is legal even
/// though the full name is not in [`REGISTERED_KEYS`].
pub const REGISTERED_PREFIXES: &[&str] = &["server.requests."];

/// Whether `name` is a registered key or falls under a registered
/// dynamic prefix.
pub fn is_registered(name: &str) -> bool {
    REGISTERED_KEYS.binary_search(&name).is_ok()
        || REGISTERED_PREFIXES.iter().any(|p| name.starts_with(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for pair in REGISTERED_KEYS.windows(2) {
            assert!(
                pair[0] < pair[1],
                "REGISTERED_KEYS must be sorted and duplicate-free: {} then {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn lookup_covers_keys_and_prefixes() {
        assert!(is_registered("lp.pivots"));
        assert!(is_registered("server.requests.tick"));
        assert!(!is_registered("lp.bogus"));
        assert!(!is_registered("server.requestsx"));
    }

    #[test]
    fn names_are_dotted_lowercase_paths() {
        for key in REGISTERED_KEYS {
            assert!(
                key.contains('.')
                    && key
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c)),
                "bad key shape: {key}"
            );
        }
    }
}

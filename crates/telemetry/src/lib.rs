//! Zero-dependency process metrics for the HARMONY stack.
//!
//! A [`Registry`] maps metric names to three kinds of instruments:
//!
//! * [`Counter`] — monotonically increasing `u64` (events, drops, pivots),
//! * [`Gauge`] — last-written / high-watermark `f64` (queue depths),
//! * [`Histogram`] — fixed-bucket distribution of `f64` samples
//!   (stage latencies), observed through a [`Timer`] span guard on the
//!   monotonic clock.
//!
//! Everything records through atomics, so `harmonyd`'s
//! thread-per-connection model can count requests without taking the
//! service `RwLock`, and the sim engine's event loop can flush local
//! tallies without contention. Registration (first use of a name) takes
//! a short lock on the registry map; recording through the returned
//! `Arc` handle is lock-free.
//!
//! Most call sites use the process-wide registry via [`global()`]:
//!
//! ```
//! use harmony_telemetry as telemetry;
//!
//! telemetry::global().counter("doc.example.events").inc();
//! let _span = telemetry::global().timer("doc.example.seconds");
//! // ... timed work; the histogram records when `_span` drops ...
//! # drop(_span);
//! let snap = telemetry::global().snapshot();
//! assert!(snap.counter("doc.example.events") >= 1);
//! ```
//!
//! Metric names are dot-separated lowercase paths, `<subsystem>.<what>`
//! with a `_seconds` suffix for duration histograms (see DESIGN.md §9).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

pub mod keys;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter { value: AtomicU64::new(0) }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-written `f64` with a high-watermark helper.
///
/// Stored as IEEE-754 bits in an `AtomicU64`; `set_max` uses a CAS loop
/// and ignores NaN samples so a poisoned observation cannot wedge the
/// watermark.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Gauge { bits: AtomicU64::new(0) }
    }

    /// Overwrites the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (NaN is ignored).
    pub fn set_max(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Adds `v` to an `f64` accumulated as bits in an `AtomicU64`.
fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f64::from_bits(cur) + v;
        match cell.compare_exchange_weak(
            cur,
            next.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Default histogram bounds for `_seconds` metrics: a 1–2–5 ladder from
/// 1µs to 10s. Samples above 10s land in the overflow bucket.
pub const DURATION_BOUNDS: [f64; 22] = [
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2,
    5e-2, 1e-1, 2e-1, 5e-1, 1.0, 2.0, 5.0, 10.0,
];

/// A fixed-bucket distribution of `f64` samples.
///
/// Bucket `i` counts samples `<= bounds[i]`; one extra overflow bucket
/// counts the rest. Bounds are fixed at registration, so `observe` is a
/// binary search plus two atomic adds — safe to call from any thread.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds.
    ///
    /// Non-finite and unsorted bounds are filtered/sorted defensively so
    /// a bad call site degrades the resolution, not the process.
    pub fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            buckets: (0..n).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one sample (NaN is counted in the overflow bucket and
    /// excluded from the sum so the mean stays finite).
    pub fn observe(&self, v: f64) {
        let idx = if v.is_nan() {
            self.bounds.len()
        } else {
            self.bounds.partition_point(|b| *b < v)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if !v.is_nan() {
            atomic_f64_add(&self.sum_bits, v);
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// A span guard that records its lifetime into a histogram on drop.
///
/// Obtained from [`Registry::timer`]; uses [`Instant`] (monotonic), so
/// wall-clock steps cannot produce negative or skewed samples.
#[derive(Debug)]
pub struct Timer {
    histogram: Option<Arc<Histogram>>,
    start: Instant,
}

impl Timer {
    fn new(histogram: Arc<Histogram>) -> Self {
        Timer { histogram: Some(histogram), start: Instant::now() }
    }

    /// Stops the span now, records it, and returns the elapsed seconds.
    pub fn stop(mut self) -> f64 {
        let elapsed = self.start.elapsed().as_secs_f64();
        if let Some(h) = self.histogram.take() {
            h.observe(elapsed);
        }
        elapsed
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(h) = self.histogram.take() {
            h.observe(self.start.elapsed().as_secs_f64());
        }
    }
}

/// A named collection of counters, gauges, and histograms.
///
/// `Registry::new` is `const`, so a registry can live in a `static`
/// ([`global()`] does exactly that). Lookups clone an `Arc` handle under
/// a short map lock; all recording happens on the handle without locks.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// Recovers the guard from a poisoned lock: metrics maps hold plain
/// atomics whose invariants cannot be violated mid-update, so a panic
/// elsewhere never leaves them in a state worth refusing to read.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Registry {
    /// An empty registry (usable in `static` position).
    pub const fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock(&self.counters);
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::new());
                map.insert(name.to_owned(), Arc::clone(&c));
                c
            }
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = lock(&self.gauges);
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::new());
                map.insert(name.to_owned(), Arc::clone(&g));
                g
            }
        }
    }

    /// The histogram registered under `name`, creating it with the given
    /// bucket bounds on first use (later calls keep the original bounds).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = lock(&self.histograms);
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new(bounds));
                map.insert(name.to_owned(), Arc::clone(&h));
                h
            }
        }
    }

    /// A running [`Timer`] recording into the `name` histogram with the
    /// default [`DURATION_BOUNDS`].
    pub fn timer(&self, name: &str) -> Timer {
        Timer::new(self.histogram(name, &DURATION_BOUNDS))
    }

    /// Times `f` into the `name` histogram and returns its result.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let timer = self.timer(name);
        let out = f();
        drop(timer);
        out
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let counters = lock(&self.counters)
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = lock(&self.gauges)
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = lock(&self.histograms)
            .iter()
            .map(|(name, h)| HistogramSnapshot {
                name: name.clone(),
                count: h.count(),
                sum: h.sum(),
                bounds: h.bounds.clone(),
                buckets: h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            })
            .collect();
        Snapshot { counters, gauges, histograms }
    }

    /// Zeroes every registered metric in place (handles stay valid).
    /// Intended for tests and for `--metrics` runs that want a clean
    /// window; not used on the serving path.
    pub fn reset(&self) {
        for c in lock(&self.counters).values() {
            c.reset();
        }
        for g in lock(&self.gauges).values() {
            g.reset();
        }
        for h in lock(&self.histograms).values() {
            h.reset();
        }
    }
}

/// The process-wide registry all HARMONY subsystems record into.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

/// A point-in-time copy of a registry's metrics, detached from the
/// atomics so it can be serialized or asserted on at leisure.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states, ordered by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// The named counter's value (0 when never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram's state, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Ascending bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket sample counts; `buckets[bounds.len()]` is overflow.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0..=1.0`): the upper bound of the
    /// bucket holding the sample of that rank. Ranks landing in the
    /// overflow bucket are capped to the largest finite bound. Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Same rank convention as `DelayStats::from_delays`: the
        // ceil(q*n)-th smallest sample, clamped to [1, n].
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return match self.bounds.get(i) {
                    Some(&b) => b,
                    None => self.bounds.last().copied().unwrap_or(0.0),
                };
            }
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_inc_and_add() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("a").add(4);
        assert_eq!(r.counter("a").get(), 5);
        assert_eq!(r.counter("other").get(), 0, "fresh names start at zero");
    }

    #[test]
    fn counters_are_shared_across_threads() {
        let r = Arc::new(Registry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let c = r.counter("t");
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("t").get(), 8000);
    }

    #[test]
    fn gauge_set_and_watermark() {
        let g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set_max(1.0);
        assert_eq!(g.get(), 2.5, "set_max never lowers");
        g.set_max(7.0);
        assert_eq!(g.get(), 7.0);
        g.set_max(f64::NAN);
        assert_eq!(g.get(), 7.0, "NaN is ignored");
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        // On the boundary → lower bucket; just above → next bucket.
        h.observe(1.0);
        h.observe(1.0000001);
        h.observe(4.0);
        h.observe(4.5); // overflow
        h.observe(0.0);
        let snap = snapshot_of(&h);
        assert_eq!(snap.buckets, vec![2, 1, 1, 1]);
        assert_eq!(snap.count, 5);
        assert!((snap.sum - 10.5000001).abs() < 1e-9);
    }

    #[test]
    fn histogram_handles_nan_and_unsorted_bounds() {
        let h = Histogram::new(&[5.0, 1.0, f64::INFINITY, 1.0]);
        assert_eq!(h.bounds, vec![1.0, 5.0], "bounds sorted, deduped, finite");
        h.observe(f64::NAN);
        h.observe(2.0);
        let snap = snapshot_of(&h);
        assert_eq!(snap.buckets, vec![0, 1, 1], "NaN lands in overflow");
        assert_eq!(snap.count, 2);
        assert!((snap.sum - 2.0).abs() < 1e-12, "NaN excluded from sum");
    }

    #[test]
    fn histogram_quantiles_follow_bucket_upper_bounds() {
        let h = Histogram::new(&[1.0, 2.0, 4.0, 8.0]);
        for v in [0.5, 0.5, 1.5, 3.0, 7.0] {
            h.observe(v);
        }
        let snap = snapshot_of(&h);
        // ranks: q50 → 3rd of 5 → bucket(1.5) → bound 2.0
        assert_eq!(snap.quantile(0.5), 2.0);
        assert_eq!(snap.quantile(0.0), 1.0, "q=0 clamps to rank 1");
        assert_eq!(snap.quantile(1.0), 8.0);
        assert_eq!(snap.quantile(0.2), 1.0, "both 0.5 samples in first bucket");
    }

    #[test]
    fn histogram_quantile_caps_overflow_to_last_bound() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(100.0);
        let snap = snapshot_of(&h);
        assert_eq!(snap.quantile(0.99), 2.0);
        assert_eq!(snap.mean(), 100.0, "mean uses the true sum");
    }

    #[test]
    fn empty_histogram_quantile_and_mean_are_zero() {
        let snap = snapshot_of(&Histogram::new(&[1.0]));
        assert_eq!(snap.quantile(0.5), 0.0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn timer_records_into_histogram() {
        let r = Registry::new();
        {
            let _span = r.timer("work_seconds");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let elapsed = r.timer("work_seconds").stop();
        assert!(elapsed >= 0.0);
        let snap = r.snapshot();
        let h = snap.histogram("work_seconds").unwrap();
        assert_eq!(h.count, 2);
        assert!(h.sum >= 0.002, "first span slept 2ms, sum={}", h.sum);
    }

    #[test]
    fn time_closure_returns_value_and_records() {
        let r = Registry::new();
        let out = r.time("f_seconds", || 42);
        assert_eq!(out, 42);
        assert_eq!(r.snapshot().histogram("f_seconds").unwrap().count, 1);
    }

    #[test]
    fn snapshot_reflects_all_kinds_and_reset_zeroes() {
        let r = Registry::new();
        let c = r.counter("events");
        c.add(3);
        r.gauge("depth").set(9.0);
        r.histogram("lat", &DURATION_BOUNDS).observe(0.5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("events"), 3);
        assert_eq!(snap.gauge("depth"), Some(9.0));
        assert_eq!(snap.histogram("lat").unwrap().count, 1);

        r.reset();
        let snap = r.snapshot();
        assert_eq!(snap.counter("events"), 0);
        assert_eq!(snap.gauge("depth"), Some(0.0));
        assert_eq!(snap.histogram("lat").unwrap().count, 0);
        c.inc();
        assert_eq!(r.counter("events").get(), 1, "old handles stay live after reset");
    }

    #[test]
    fn global_registry_is_shared() {
        global().counter("telemetry.test.global").inc();
        assert!(global().snapshot().counter("telemetry.test.global") >= 1);
    }

    fn snapshot_of(h: &Histogram) -> HistogramSnapshot {
        HistogramSnapshot {
            name: "h".to_owned(),
            count: h.count(),
            sum: h.sum(),
            bounds: h.bounds.clone(),
            buckets: h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

//! Property-based tests for the forecasting substrate.

use harmony_forecast::series::{difference, difference_tails, integrate};
use harmony_forecast::{Arima, Ewma, Forecaster, Holt, MovingAverage, Naive};
use proptest::prelude::*;

fn series_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e4f64..1e4, 20..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// difference/integrate round-trip for d in 0..=2 on arbitrary
    /// series.
    #[test]
    fn difference_integrate_roundtrip(s in series_strategy(), d in 0usize..3) {
        let split = s.len() / 2;
        let history = &s[..split];
        prop_assume!(history.len() > d + 1);
        let diffed_all = difference(&s, d).unwrap();
        let future_diffed = &diffed_all[split - d..];
        let tails = difference_tails(history, d).unwrap();
        let reconstructed = integrate(future_diffed, &tails);
        for (a, b) in reconstructed.iter().zip(&s[split..]) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    /// Every forecaster returns the requested number of finite values on
    /// arbitrary finite histories.
    #[test]
    fn forecasts_are_finite(s in series_strategy(), horizon in 1usize..6) {
        let ma = MovingAverage::new(5).unwrap();
        let ewma = Ewma::new(0.4).unwrap();
        let holt = Holt::new(0.5, 0.3).unwrap();
        let arima = Arima::new(1, 0, 1).unwrap().with_mean();
        let forecasters: Vec<&dyn Forecaster> = vec![&Naive, &ma, &ewma, &holt, &arima];
        for f in forecasters {
            let fc = f.forecast(&s, horizon).unwrap();
            prop_assert_eq!(fc.len(), horizon, "{}", f.name());
            for v in &fc {
                prop_assert!(v.is_finite(), "{} produced {v}", f.name());
            }
        }
    }

    /// Constant series: every forecaster predicts (nearly) the constant.
    #[test]
    fn constant_series_fixed_point(level in -1e3f64..1e3, n in 10usize..60) {
        let s = vec![level; n];
        let ma = MovingAverage::new(5).unwrap();
        let ewma = Ewma::new(0.4).unwrap();
        let forecasters: Vec<&dyn Forecaster> = vec![&Naive, &ma, &ewma];
        for f in forecasters {
            let fc = f.forecast(&s, 3).unwrap();
            for v in fc {
                prop_assert!((v - level).abs() < 1e-9 * (1.0 + level.abs()), "{}", f.name());
            }
        }
    }

    /// ARIMA fitting on white-ish noise never produces wild forecasts:
    /// predictions stay within an order of magnitude of the history's
    /// range.
    #[test]
    fn arima_forecasts_bounded(seed in 0u64..5000) {
        let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(7);
        let mut noise = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 33) as f64 / (1u64 << 30) as f64) - 1.0
        };
        let s: Vec<f64> = (0..80).map(|_| 50.0 + 10.0 * noise()).collect();
        let fc = Arima::new(2, 0, 1).unwrap().with_mean().forecast(&s, 5).unwrap();
        let lo = s.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = hi - lo;
        for v in fc {
            prop_assert!(
                v > lo - 2.0 * span && v < hi + 2.0 * span,
                "forecast {v} far outside history [{lo}, {hi}]"
            );
        }
    }
}

//! ARIMA(p, d, q) via conditional sum of squares.
//!
//! The fitting pipeline follows the classic Box–Jenkins recipe:
//!
//! 1. difference the series `d` times;
//! 2. center the differenced series (when a mean term is included);
//! 3. minimize the conditional sum of squared innovations over the AR
//!    and MA coefficients — seeded with a Yule–Walker AR fit and refined
//!    by Nelder–Mead;
//! 4. forecast recursively and re-integrate through the differencing
//!    chain.

use serde::{Deserialize, Serialize};

use crate::error::check_finite;
use crate::series::{difference, difference_tails, mean, variance, yule_walker};
use crate::{nelder_mead, ForecastError, Forecaster, NelderMeadOptions};

/// Maximum supported AR/MA order; higher orders add little for the
/// arrival-rate series HARMONY predicts and slow the CSS search.
pub const MAX_ORDER: usize = 8;
/// Maximum supported differencing order.
pub const MAX_D: usize = 2;

/// An ARIMA(p, d, q) model specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arima {
    p: usize,
    d: usize,
    q: usize,
    include_mean: bool,
    optimizer: NelderMeadOptions,
}

impl Arima {
    /// Creates an ARIMA(p, d, q) specification. The mean term defaults to
    /// *off* (standard for differenced models); enable it with
    /// [`Arima::with_mean`].
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidParameter`] when `p` or `q` exceed
    /// [`MAX_ORDER`] or `d` exceeds [`MAX_D`].
    pub fn new(p: usize, d: usize, q: usize) -> Result<Self, ForecastError> {
        if p > MAX_ORDER {
            return Err(ForecastError::InvalidParameter { name: "p", value: p.to_string() });
        }
        if q > MAX_ORDER {
            return Err(ForecastError::InvalidParameter { name: "q", value: q.to_string() });
        }
        if d > MAX_D {
            return Err(ForecastError::InvalidParameter { name: "d", value: d.to_string() });
        }
        Ok(Arima { p, d, q, include_mean: false, optimizer: NelderMeadOptions::default() })
    }

    /// Includes a mean (drift, once differenced) term.
    pub fn with_mean(mut self) -> Self {
        self.include_mean = true;
        self
    }

    /// Overrides the Nelder–Mead options used for CSS minimization.
    pub fn optimizer(mut self, options: NelderMeadOptions) -> Self {
        self.optimizer = options;
        self
    }

    /// The `(p, d, q)` order.
    pub fn order(&self) -> (usize, usize, usize) {
        (self.p, self.d, self.q)
    }

    /// Minimum history length this specification can be fitted on.
    pub fn min_history(&self) -> usize {
        self.d + self.p.max(self.q) + 4
    }

    /// Fits the model on `history`.
    ///
    /// # Errors
    ///
    /// * [`ForecastError::SeriesTooShort`] below [`Arima::min_history`].
    /// * [`ForecastError::NonFiniteValue`] for NaN/infinite observations.
    /// * [`ForecastError::FitFailed`] when optimization diverges.
    pub fn fit(&self, history: &[f64]) -> Result<ArimaFit, ForecastError> {
        check_finite(history)?;
        if history.len() < self.min_history() {
            return Err(ForecastError::SeriesTooShort {
                needed: self.min_history(),
                got: history.len(),
            });
        }
        let w = difference(history, self.d)?;
        let mu = if self.include_mean { mean(&w) } else { 0.0 };
        let centered: Vec<f64> = w.iter().map(|v| v - mu).collect();

        // Seed: Yule-Walker for the AR part, zeros for MA.
        let phi0 = if self.p > 0 && variance(&centered) > 0.0 {
            yule_walker(&centered, self.p).unwrap_or_else(|_| vec![0.0; self.p])
        } else {
            vec![0.0; self.p]
        };
        let mut x0 = phi0;
        x0.extend(std::iter::repeat_n(0.0, self.q));

        let (params, sse) = if self.p + self.q > 0 {
            let p = self.p;
            let q = self.q;
            let series = centered.clone();
            let obj = move |x: &[f64]| css(&series, &x[..p], &x[p..p + q]);
            let seeded_sse = obj(&x0);
            let (best, best_sse) = nelder_mead(obj, &x0, &self.optimizer);
            if best_sse.is_finite() && best_sse <= seeded_sse {
                (best, best_sse)
            } else if seeded_sse.is_finite() {
                (x0, seeded_sse)
            } else {
                return Err(ForecastError::FitFailed {
                    reason: "conditional sum of squares diverged".to_owned(),
                });
            }
        } else {
            (Vec::new(), css(&centered, &[], &[]))
        };
        if !sse.is_finite() {
            return Err(ForecastError::FitFailed {
                reason: "conditional sum of squares is not finite".to_owned(),
            });
        }
        let phi = params[..self.p].to_vec();
        let theta = params[self.p..].to_vec();
        let residuals = residuals(&centered, &phi, &theta);
        let n = centered.len() as f64;
        let k = (self.p + self.q + usize::from(self.include_mean)) as f64;
        let sigma2 = (sse / n).max(f64::MIN_POSITIVE);
        let aic = n * sigma2.ln() + 2.0 * (k + 1.0);
        Ok(ArimaFit {
            p: self.p,
            d: self.d,
            q: self.q,
            phi,
            theta,
            mu,
            sigma2,
            aic,
            centered,
            residuals,
            tails: difference_tails(history, self.d)?,
        })
    }
}

impl Forecaster for Arima {
    fn name(&self) -> &'static str {
        "arima"
    }

    fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>, ForecastError> {
        Ok(self.fit(history)?.forecast(horizon))
    }
}

/// Conditional sum of squares for an ARMA(p, q) on a centered series.
/// Returns `+∞` for parameter vectors that blow up.
fn css(w: &[f64], phi: &[f64], theta: &[f64]) -> f64 {
    // Soft feasibility guard: wildly non-stationary coefficients explode
    // the recursion anyway, but reject early for speed.
    if phi.iter().chain(theta).any(|c| !c.is_finite() || c.abs() > 3.0) {
        return f64::INFINITY;
    }
    let e = residuals(w, phi, theta);
    let sse: f64 = e.iter().map(|v| v * v).sum();
    if sse.is_finite() {
        sse
    } else {
        f64::INFINITY
    }
}

/// Innovation sequence of an ARMA(p, q) on a centered series, with
/// pre-sample values set to zero (the "conditional" in CSS).
fn residuals(w: &[f64], phi: &[f64], theta: &[f64]) -> Vec<f64> {
    let mut e = vec![0.0f64; w.len()];
    for t in 0..w.len() {
        let mut pred = 0.0;
        for (i, &p) in phi.iter().enumerate() {
            if t > i {
                pred += p * w[t - 1 - i];
            }
        }
        for (j, &th) in theta.iter().enumerate() {
            if t > j {
                pred += th * e[t - 1 - j];
            }
        }
        e[t] = w[t] - pred;
        if !e[t].is_finite() || e[t].abs() > 1e12 {
            e[t] = f64::INFINITY;
            break;
        }
    }
    e
}

/// A fitted ARIMA model, ready to forecast.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArimaFit {
    p: usize,
    d: usize,
    q: usize,
    phi: Vec<f64>,
    theta: Vec<f64>,
    mu: f64,
    sigma2: f64,
    aic: f64,
    centered: Vec<f64>,
    residuals: Vec<f64>,
    tails: Vec<f64>,
}

impl ArimaFit {
    /// AR coefficients `φ_1..φ_p`.
    pub fn phi(&self) -> &[f64] {
        &self.phi
    }

    /// MA coefficients `θ_1..θ_q`.
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// The mean of the differenced series (0 unless fitted with
    /// [`Arima::with_mean`]).
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Innovation variance estimate.
    pub fn sigma2(&self) -> f64 {
        self.sigma2
    }

    /// Akaike information criterion of the fit (lower is better).
    pub fn aic(&self) -> f64 {
        self.aic
    }

    /// In-sample innovations on the differenced scale.
    pub fn residuals(&self) -> &[f64] {
        &self.residuals
    }

    /// Forecasts `horizon` steps ahead on the original scale.
    pub fn forecast(&self, horizon: usize) -> Vec<f64> {
        // Recursive ARMA forecasts on the centered differenced scale.
        let n = self.centered.len();
        let mut w_ext = self.centered.clone();
        let mut e_ext = self.residuals.clone();
        for h in 0..horizon {
            let t = n + h;
            let mut pred = 0.0;
            for (i, &p) in self.phi.iter().enumerate() {
                if t > i {
                    pred += p * w_ext[t - 1 - i];
                }
            }
            for (j, &th) in self.theta.iter().enumerate() {
                if t > j {
                    pred += th * e_ext[t - 1 - j];
                }
            }
            w_ext.push(pred);
            e_ext.push(0.0); // future innovations have zero expectation
        }
        let diffed_fc: Vec<f64> = w_ext[n..].iter().map(|v| v + self.mu).collect();
        crate::series::integrate(&diffed_fc, &self.tails)
    }
}

/// Selects an ARIMA order automatically: the differencing order `d` is
/// the smallest one that stops reducing the series variance by more than
/// 10%, and `(p, q)` minimize AIC over the grid
/// `0..=p_max × 0..=q_max`.
///
/// Returns the fitted model of the winning order.
///
/// # Errors
///
/// Propagates fitting errors if *every* candidate order fails; otherwise
/// failed candidates are skipped.
///
/// # Examples
///
/// ```
/// use harmony_forecast::auto_arima;
///
/// let s: Vec<f64> = (0..100).map(|t| 50.0 + (t as f64 * 0.2).sin() * 10.0).collect();
/// let (order, fit) = auto_arima(&s, 3, 2)?;
/// assert!(order.0 <= 3 && order.2 <= 2);
/// let fc = fit.forecast(5);
/// assert_eq!(fc.len(), 5);
/// # Ok::<(), harmony_forecast::ForecastError>(())
/// ```
pub fn auto_arima(
    history: &[f64],
    p_max: usize,
    q_max: usize,
) -> Result<((usize, usize, usize), ArimaFit), ForecastError> {
    check_finite(history)?;
    // Pick d: difference while the series looks near-unit-root (sample
    // lag-1 autocorrelation above 0.9). A stationary AR process with
    // moderate phi stays below the threshold; a random walk sits near 1.
    let mut d = 0usize;
    while d < MAX_D {
        let current = difference(history, d)?;
        let near_unit_root = match crate::series::acf(&current, 1) {
            Ok(r) => r[1] > 0.9,
            Err(_) => false,
        };
        if near_unit_root && variance(&difference(history, d + 1)?) > 0.0 {
            d += 1;
        } else {
            break;
        }
    }
    let mut best: Option<((usize, usize, usize), ArimaFit)> = None;
    let mut last_err = None;
    for p in 0..=p_max.min(MAX_ORDER) {
        for q in 0..=q_max.min(MAX_ORDER) {
            let spec = match Arima::new(p, d, q) {
                Ok(s) => if d == 0 { s.with_mean() } else { s },
                Err(e) => return Err(e),
            };
            match spec.fit(history) {
                Ok(fit) => {
                    if best.as_ref().is_none_or(|(_, b)| fit.aic() < b.aic()) {
                        best = Some(((p, d, q), fit));
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
    }
    best.ok_or_else(|| {
        last_err.unwrap_or(ForecastError::FitFailed { reason: "no candidate order fitted".into() })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_noise(seed: u64) -> impl FnMut() -> f64 {
        let mut x = seed;
        move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 33) as f64 / (1u64 << 30) as f64) - 1.0
        }
    }

    #[test]
    fn order_validation() {
        assert!(Arima::new(9, 0, 0).is_err());
        assert!(Arima::new(0, 3, 0).is_err());
        assert!(Arima::new(0, 0, 9).is_err());
        let a = Arima::new(2, 1, 1).unwrap();
        assert_eq!(a.order(), (2, 1, 1));
    }

    #[test]
    fn rejects_short_or_bad_series() {
        let a = Arima::new(1, 1, 0).unwrap();
        assert!(matches!(a.fit(&[1.0, 2.0]), Err(ForecastError::SeriesTooShort { .. })));
        let bad = vec![1.0, f64::NAN, 3.0, 4.0, 5.0, 6.0, 7.0];
        assert!(matches!(a.fit(&bad), Err(ForecastError::NonFiniteValue { index: 1 })));
    }

    #[test]
    fn ar1_coefficient_recovered() {
        let mut noise = lcg_noise(1);
        let mut s = vec![0.0f64];
        for _ in 0..4000 {
            let prev = *s.last().unwrap();
            s.push(0.65 * prev + noise());
        }
        let fit = Arima::new(1, 0, 0).unwrap().fit(&s).unwrap();
        assert!((fit.phi()[0] - 0.65).abs() < 0.05, "phi = {:?}", fit.phi());
        assert!(fit.sigma2() > 0.0);
    }

    #[test]
    fn ma1_coefficient_recovered() {
        let mut noise = lcg_noise(2);
        let mut prev_e = 0.0;
        let mut s = Vec::with_capacity(4000);
        for _ in 0..4000 {
            let e = noise();
            s.push(e + 0.55 * prev_e);
            prev_e = e;
        }
        let fit = Arima::new(0, 0, 1).unwrap().fit(&s).unwrap();
        assert!((fit.theta()[0] - 0.55).abs() < 0.07, "theta = {:?}", fit.theta());
    }

    #[test]
    fn random_walk_forecast_is_flat() {
        let mut noise = lcg_noise(3);
        let mut s = vec![100.0f64];
        for _ in 0..300 {
            let prev = *s.last().unwrap();
            s.push(prev + noise());
        }
        let fit = Arima::new(0, 1, 0).unwrap().fit(&s).unwrap();
        let fc = fit.forecast(5);
        let last = *s.last().unwrap();
        for v in fc {
            assert!((v - last).abs() < 1e-9, "random-walk forecast should hold the level");
        }
    }

    #[test]
    fn drift_model_extends_trend() {
        let s: Vec<f64> = (0..50).map(|t| 5.0 * t as f64).collect();
        let fit = Arima::new(0, 1, 0).unwrap().with_mean().fit(&s).unwrap();
        let fc = fit.forecast(3);
        for (h, v) in fc.iter().enumerate() {
            let expected = 5.0 * (50 + h) as f64;
            assert!((v - expected).abs() < 1e-6, "h={h}: {v}");
        }
    }

    #[test]
    fn forecast_length_matches_horizon() {
        let s: Vec<f64> = (0..40).map(|t| (t as f64).sin()).collect();
        let fit = Arima::new(2, 0, 1).unwrap().with_mean().fit(&s).unwrap();
        assert_eq!(fit.forecast(0).len(), 0);
        assert_eq!(fit.forecast(7).len(), 7);
    }

    #[test]
    fn aic_penalizes_overfitting_noise() {
        let mut noise = lcg_noise(4);
        let s: Vec<f64> = (0..600).map(|_| noise()).collect();
        let small = Arima::new(0, 0, 0).unwrap().with_mean().fit(&s).unwrap();
        let big = Arima::new(4, 0, 4).unwrap().with_mean().fit(&s).unwrap();
        assert!(
            small.aic() < big.aic() + 2.0,
            "white noise should not favor a large model decisively: {} vs {}",
            small.aic(),
            big.aic()
        );
    }

    #[test]
    fn auto_arima_picks_d1_for_random_walk() {
        let mut noise = lcg_noise(5);
        let mut s = vec![0.0f64];
        for _ in 0..500 {
            let prev = *s.last().unwrap();
            s.push(prev + noise());
        }
        let ((_, d, _), _) = auto_arima(&s, 2, 2).unwrap();
        assert_eq!(d, 1);
    }

    #[test]
    fn auto_arima_prefers_ar_for_ar_process() {
        let mut noise = lcg_noise(6);
        let mut s = vec![0.0f64];
        for _ in 0..2000 {
            let prev = *s.last().unwrap();
            s.push(0.8 * prev + noise());
        }
        let ((p, d, _), fit) = auto_arima(&s, 2, 1).unwrap();
        assert_eq!(d, 0);
        assert!(p >= 1, "should detect autoregression");
        assert_eq!(fit.forecast(3).len(), 3);
    }

    #[test]
    fn forecaster_trait_roundtrip() {
        let a = Arima::new(1, 0, 0).unwrap().with_mean();
        assert_eq!(a.name(), "arima");
        let s: Vec<f64> = (0..50).map(|t| 10.0 + (t % 5) as f64).collect();
        let fc = a.forecast(&s, 4).unwrap();
        assert_eq!(fc.len(), 4);
        for v in fc {
            assert!(v.is_finite() && v > 5.0 && v < 20.0);
        }
    }
}

//! Error type for forecasting operations.

use std::error::Error;
use std::fmt;

/// Errors returned by forecasting operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ForecastError {
    /// The history is shorter than the model requires.
    SeriesTooShort {
        /// Minimum usable length.
        needed: usize,
        /// Supplied length.
        got: usize,
    },
    /// The history contains a NaN or infinite value.
    NonFiniteValue {
        /// Index of the offending observation.
        index: usize,
    },
    /// A model hyper-parameter is out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Supplied value, formatted.
        value: String,
    },
    /// Optimization failed to produce finite coefficients.
    FitFailed {
        /// Human-readable diagnostic.
        reason: String,
    },
}

impl fmt::Display for ForecastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForecastError::SeriesTooShort { needed, got } => {
                write!(f, "series has {got} observations, at least {needed} required")
            }
            ForecastError::NonFiniteValue { index } => {
                write!(f, "observation {index} is NaN or infinite")
            }
            ForecastError::InvalidParameter { name, value } => {
                write!(f, "parameter {name} has invalid value {value}")
            }
            ForecastError::FitFailed { reason } => write!(f, "model fit failed: {reason}"),
        }
    }
}

impl Error for ForecastError {}

/// Validates that a series is finite, returning the first bad index.
pub(crate) fn check_finite(series: &[f64]) -> Result<(), ForecastError> {
    match series.iter().position(|v| !v.is_finite()) {
        Some(index) => Err(ForecastError::NonFiniteValue { index }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(ForecastError::SeriesTooShort { needed: 5, got: 2 }.to_string().contains("5"));
        assert!(ForecastError::NonFiniteValue { index: 3 }.to_string().contains("3"));
        assert!(ForecastError::FitFailed { reason: "x".into() }.to_string().contains("x"));
    }

    #[test]
    fn check_finite_finds_first_bad_index() {
        assert!(check_finite(&[1.0, 2.0]).is_ok());
        assert_eq!(
            check_finite(&[1.0, f64::NAN, f64::INFINITY]),
            Err(ForecastError::NonFiniteValue { index: 1 })
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<ForecastError>();
    }
}

//! Baseline predictors used in the predictor-choice ablation.

use serde::{Deserialize, Serialize};

use crate::error::check_finite;
use crate::{ForecastError, Forecaster};

/// Naive forecast: repeat the last observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Naive;

impl Forecaster for Naive {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>, ForecastError> {
        check_finite(history)?;
        let last = *history
            .last()
            .ok_or(ForecastError::SeriesTooShort { needed: 1, got: 0 })?;
        Ok(vec![last; horizon])
    }
}

/// Simple moving average of the last `window` observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MovingAverage {
    window: usize,
}

impl MovingAverage {
    /// Creates a moving-average forecaster.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidParameter`] when `window == 0`.
    pub fn new(window: usize) -> Result<Self, ForecastError> {
        if window == 0 {
            return Err(ForecastError::InvalidParameter { name: "window", value: "0".into() });
        }
        Ok(MovingAverage { window })
    }
}

impl Forecaster for MovingAverage {
    fn name(&self) -> &'static str {
        "moving-average"
    }

    fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>, ForecastError> {
        check_finite(history)?;
        if history.is_empty() {
            return Err(ForecastError::SeriesTooShort { needed: 1, got: 0 });
        }
        let start = history.len().saturating_sub(self.window);
        let tail = &history[start..];
        let avg = tail.iter().sum::<f64>() / tail.len() as f64;
        Ok(vec![avg; horizon])
    }
}

/// Exponentially-weighted moving average with smoothing factor `alpha`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
}

impl Ewma {
    /// Creates an EWMA forecaster.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidParameter`] unless
    /// `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Result<Self, ForecastError> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(ForecastError::InvalidParameter {
                name: "alpha",
                value: alpha.to_string(),
            });
        }
        Ok(Ewma { alpha })
    }
}

impl Forecaster for Ewma {
    fn name(&self) -> &'static str {
        "ewma"
    }

    fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>, ForecastError> {
        check_finite(history)?;
        let mut iter = history.iter();
        let mut level = *iter
            .next()
            .ok_or(ForecastError::SeriesTooShort { needed: 1, got: 0 })?;
        for &v in iter {
            level = self.alpha * v + (1.0 - self.alpha) * level;
        }
        Ok(vec![level; horizon])
    }
}

/// Holt's double exponential smoothing: level + trend.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Holt {
    alpha: f64,
    beta: f64,
}

impl Holt {
    /// Creates a Holt forecaster with level smoothing `alpha` and trend
    /// smoothing `beta`.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidParameter`] unless both factors
    /// are in `(0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, ForecastError> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(ForecastError::InvalidParameter {
                name: "alpha",
                value: alpha.to_string(),
            });
        }
        if !(beta > 0.0 && beta <= 1.0) {
            return Err(ForecastError::InvalidParameter { name: "beta", value: beta.to_string() });
        }
        Ok(Holt { alpha, beta })
    }
}

impl Forecaster for Holt {
    fn name(&self) -> &'static str {
        "holt"
    }

    fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>, ForecastError> {
        check_finite(history)?;
        if history.len() < 2 {
            return Err(ForecastError::SeriesTooShort { needed: 2, got: history.len() });
        }
        let mut level = history[0];
        let mut trend = history[1] - history[0];
        for &v in &history[1..] {
            let prev_level = level;
            level = self.alpha * v + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
        }
        Ok((1..=horizon).map(|h| level + trend * h as f64).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_repeats_last() {
        let fc = Naive.forecast(&[1.0, 2.0, 3.0], 3).unwrap();
        assert_eq!(fc, vec![3.0, 3.0, 3.0]);
        assert!(Naive.forecast(&[], 1).is_err());
        assert_eq!(Naive.name(), "naive");
    }

    #[test]
    fn moving_average_windows() {
        let ma = MovingAverage::new(2).unwrap();
        let fc = ma.forecast(&[1.0, 2.0, 4.0], 2).unwrap();
        assert_eq!(fc, vec![3.0, 3.0]);
        // Window larger than history falls back to the full mean.
        let ma10 = MovingAverage::new(10).unwrap();
        assert_eq!(ma10.forecast(&[2.0, 4.0], 1).unwrap(), vec![3.0]);
        assert!(MovingAverage::new(0).is_err());
    }

    #[test]
    fn ewma_converges_to_constant() {
        let e = Ewma::new(0.5).unwrap();
        let s = vec![10.0; 50];
        assert_eq!(e.forecast(&s, 1).unwrap(), vec![10.0]);
        assert!(Ewma::new(0.0).is_err());
        assert!(Ewma::new(1.5).is_err());
        // alpha = 1 reduces to naive.
        let e1 = Ewma::new(1.0).unwrap();
        assert_eq!(e1.forecast(&[1.0, 7.0], 1).unwrap(), vec![7.0]);
    }

    #[test]
    fn holt_tracks_linear_trend() {
        let h = Holt::new(0.8, 0.8).unwrap();
        let s: Vec<f64> = (0..30).map(|t| 2.0 * t as f64 + 1.0).collect();
        let fc = h.forecast(&s, 3).unwrap();
        for (i, v) in fc.iter().enumerate() {
            let expected = 2.0 * (30 + i) as f64 + 1.0;
            assert!((v - expected).abs() < 0.5, "h={i}: {v} vs {expected}");
        }
        assert!(Holt::new(0.5, 0.0).is_err());
        assert!(h.forecast(&[1.0], 1).is_err());
    }

    #[test]
    fn all_reject_non_finite_history() {
        let bad = [1.0, f64::NAN];
        assert!(Naive.forecast(&bad, 1).is_err());
        assert!(MovingAverage::new(2).unwrap().forecast(&bad, 1).is_err());
        assert!(Ewma::new(0.3).unwrap().forecast(&bad, 1).is_err());
        assert!(Holt::new(0.3, 0.3).unwrap().forecast(&bad, 1).is_err());
    }
}

//! Time-series forecasting for the HARMONY prediction module.
//!
//! Section VI of the paper: *"we have implemented a time series-based
//! predictor using the well-known ARIMA model"*. This crate implements
//! the Box–Jenkins ARIMA(p, d, q) family from scratch, plus the simple
//! baselines the ablation benchmarks compare against:
//!
//! * [`series`] — differencing/integration, ACF/PACF (Durbin–Levinson),
//!   summary statistics.
//! * [`Arima`] — conditional-sum-of-squares fitting (Nelder–Mead over the
//!   AR/MA coefficients, seeded by a Yule–Walker AR fit), multi-step
//!   forecasting through the integration chain, and AIC-based automatic
//!   order selection ([`auto_arima`]).
//! * [`Forecaster`] — object-safe interface shared by ARIMA, the
//!   seasonal [`HoltWinters`] model, and the baselines ([`Naive`],
//!   [`MovingAverage`], [`Ewma`], [`Holt`]).
//!
//! # Examples
//!
//! ```
//! use harmony_forecast::{Arima, Forecaster};
//!
//! // A noiseless linear trend is an ARIMA(0,1,0)-with-drift special case:
//! let history: Vec<f64> = (0..60).map(|t| 3.0 + 2.0 * t as f64).collect();
//! let model = Arima::new(0, 1, 0)?.with_mean();
//! let fc = model.forecast(&history, 4)?;
//! for (h, v) in fc.iter().enumerate() {
//!     let expected = 3.0 + 2.0 * (60 + h) as f64;
//!     assert!((v - expected).abs() < 1e-6, "h={h}: {v} vs {expected}");
//! }
//! # Ok::<(), harmony_forecast::ForecastError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod arima;
mod baselines;
mod error;
mod neldermead;
mod seasonal;
pub mod series;

pub use arima::{auto_arima, Arima, ArimaFit, MAX_D, MAX_ORDER};
pub use baselines::{Ewma, Holt, MovingAverage, Naive};
pub use error::ForecastError;
pub use neldermead::{nelder_mead, NelderMeadOptions};
pub use seasonal::HoltWinters;

/// An object-safe forecaster: given a history, predict the next
/// `horizon` values.
///
/// Implementations refit on every call; HARMONY's control loop calls this
/// once per control period with the monitored arrival-rate series.
pub trait Forecaster: std::fmt::Debug {
    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Forecasts `horizon` values following `history`.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError`] when the history is too short or
    /// contains non-finite values.
    fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>, ForecastError>;
}

/// One-step-ahead rolling evaluation of a forecaster over a series.
///
/// Starting from `warmup` observations, repeatedly forecasts the next
/// value and records the absolute error. Returns `(mae, rmse)`.
///
/// # Errors
///
/// Propagates forecaster errors; returns
/// [`ForecastError::SeriesTooShort`] when fewer than 2 evaluation points
/// remain after warm-up.
///
/// # Examples
///
/// ```
/// use harmony_forecast::{rolling_evaluate, Naive};
///
/// let series: Vec<f64> = (0..50).map(|t| (t as f64 * 0.3).sin()).collect();
/// let (mae, rmse) = rolling_evaluate(&Naive, &series, 10)?;
/// assert!(mae > 0.0 && rmse >= mae);
/// # Ok::<(), harmony_forecast::ForecastError>(())
/// ```
pub fn rolling_evaluate(
    forecaster: &dyn Forecaster,
    series: &[f64],
    warmup: usize,
) -> Result<(f64, f64), ForecastError> {
    if series.len() < warmup + 2 {
        return Err(ForecastError::SeriesTooShort { needed: warmup + 2, got: series.len() });
    }
    let mut abs_sum = 0.0;
    let mut sq_sum = 0.0;
    let mut n = 0usize;
    for t in warmup..series.len() - 1 {
        let pred = forecaster.forecast(&series[..=t], 1)?[0];
        let err = pred - series[t + 1];
        abs_sum += err.abs();
        sq_sum += err * err;
        n += 1;
    }
    Ok((abs_sum / n as f64, (sq_sum / n as f64).sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_evaluate_requires_points() {
        let s = [1.0, 2.0, 3.0];
        assert!(matches!(
            rolling_evaluate(&Naive, &s, 5),
            Err(ForecastError::SeriesTooShort { .. })
        ));
    }

    #[test]
    fn naive_perfect_on_constant_series() {
        let s = vec![4.0; 30];
        let (mae, rmse) = rolling_evaluate(&Naive, &s, 5).unwrap();
        assert_eq!(mae, 0.0);
        assert_eq!(rmse, 0.0);
    }

    #[test]
    fn arima_beats_naive_on_trend() {
        let s: Vec<f64> = (0..80).map(|t| 10.0 + 1.5 * t as f64).collect();
        let naive = rolling_evaluate(&Naive, &s, 20).unwrap().0;
        let arima = rolling_evaluate(&Arima::new(0, 1, 0).unwrap().with_mean(), &s, 20).unwrap().0;
        assert!(arima < naive, "arima {arima} should beat naive {naive} on a trend");
    }
}

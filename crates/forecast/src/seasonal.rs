//! Holt–Winters additive seasonal smoothing.
//!
//! The per-class arrival-rate series HARMONY predicts are strongly
//! diurnal (Fig. 19); a seasonal forecaster is the natural upgrade over
//! plain ARIMA once more than a day of history is available. This is
//! the classic additive triple-exponential smoothing: level `ℓ`, trend
//! `b`, and a seasonal index `s_i` per phase of the period.

use serde::{Deserialize, Serialize};

use crate::error::check_finite;
use crate::{ForecastError, Forecaster};

/// Additive Holt–Winters forecaster.
///
/// # Examples
///
/// ```
/// use harmony_forecast::{Forecaster, HoltWinters};
///
/// // Two days of a clean 24-sample diurnal pattern.
/// let series: Vec<f64> = (0..48)
///     .map(|t| 10.0 + 5.0 * (t as f64 / 24.0 * std::f64::consts::TAU).sin())
///     .collect();
/// let hw = HoltWinters::new(0.3, 0.05, 0.3, 24)?;
/// let fc = hw.forecast(&series, 24)?;
/// // The next day's peak and trough land near the historical ones.
/// let peak = fc.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
/// assert!((peak - 15.0).abs() < 1.5, "peak = {peak}");
/// # Ok::<(), harmony_forecast::ForecastError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoltWinters {
    alpha: f64,
    beta: f64,
    gamma: f64,
    period: usize,
}

impl HoltWinters {
    /// Creates a seasonal forecaster with level smoothing `alpha`, trend
    /// smoothing `beta`, seasonal smoothing `gamma`, and seasonal
    /// `period` in samples (e.g. 144 for a day of 10-minute control
    /// periods).
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidParameter`] unless all smoothing
    /// factors are in `(0, 1]` and `period >= 2`.
    pub fn new(alpha: f64, beta: f64, gamma: f64, period: usize) -> Result<Self, ForecastError> {
        for (name, v) in [("alpha", alpha), ("beta", beta), ("gamma", gamma)] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(ForecastError::InvalidParameter { name, value: v.to_string() });
            }
        }
        if period < 2 {
            return Err(ForecastError::InvalidParameter {
                name: "period",
                value: period.to_string(),
            });
        }
        Ok(HoltWinters { alpha, beta, gamma, period })
    }

    /// The seasonal period in samples.
    pub fn period(&self) -> usize {
        self.period
    }

    /// Minimum history: two full seasons.
    pub fn min_history(&self) -> usize {
        2 * self.period
    }
}

impl Forecaster for HoltWinters {
    fn name(&self) -> &'static str {
        "holt-winters"
    }

    fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>, ForecastError> {
        check_finite(history)?;
        let p = self.period;
        if history.len() < self.min_history() {
            return Err(ForecastError::SeriesTooShort {
                needed: self.min_history(),
                got: history.len(),
            });
        }
        // Initialization from the first two seasons: the level is the
        // first-season mean, the trend the mean season-over-season
        // change, seasonal indices the first-season deviations.
        let season1_mean: f64 = history[..p].iter().sum::<f64>() / p as f64;
        let season2_mean: f64 = history[p..2 * p].iter().sum::<f64>() / p as f64;
        let mut level = season1_mean;
        let mut trend = (season2_mean - season1_mean) / p as f64;
        let mut seasonal: Vec<f64> = history[..p].iter().map(|v| v - season1_mean).collect();

        for (t, &y) in history.iter().enumerate().skip(p) {
            let s = seasonal[t % p];
            let prev_level = level;
            level = self.alpha * (y - s) + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
            seasonal[t % p] = self.gamma * (y - level) + (1.0 - self.gamma) * s;
        }

        let n = history.len();
        Ok((1..=horizon)
            .map(|h| level + trend * h as f64 + seasonal[(n + h - 1) % p])
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diurnal(days: usize, period: usize, noise: f64) -> Vec<f64> {
        let mut x = 99u64;
        let mut rnd = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 33) as f64 / (1u64 << 30) as f64) - 1.0
        };
        (0..days * period)
            .map(|t| {
                20.0 + 8.0 * (t as f64 / period as f64 * std::f64::consts::TAU).sin()
                    + noise * rnd()
            })
            .collect()
    }

    #[test]
    fn parameter_validation() {
        assert!(HoltWinters::new(0.0, 0.1, 0.1, 24).is_err());
        assert!(HoltWinters::new(0.1, 1.5, 0.1, 24).is_err());
        assert!(HoltWinters::new(0.1, 0.1, 0.1, 1).is_err());
        assert!(HoltWinters::new(0.1, 0.1, 0.1, 24).is_ok());
    }

    #[test]
    fn requires_two_seasons() {
        let hw = HoltWinters::new(0.3, 0.1, 0.2, 24).unwrap();
        assert!(matches!(
            hw.forecast(&vec![1.0; 47], 1),
            Err(ForecastError::SeriesTooShort { needed: 48, got: 47 })
        ));
        assert_eq!(hw.min_history(), 48);
        assert_eq!(hw.period(), 24);
        assert_eq!(hw.name(), "holt-winters");
    }

    #[test]
    fn tracks_clean_seasonality() {
        let hw = HoltWinters::new(0.3, 0.05, 0.3, 24).unwrap();
        let s = diurnal(4, 24, 0.0);
        let fc = hw.forecast(&s, 24).unwrap();
        // Compare against the true next season.
        for (h, v) in fc.iter().enumerate() {
            let t = s.len() + h;
            let truth = 20.0 + 8.0 * (t as f64 / 24.0 * std::f64::consts::TAU).sin();
            assert!((v - truth).abs() < 1.0, "h={h}: {v} vs {truth}");
        }
    }

    #[test]
    fn beats_nonseasonal_predictors_on_diurnal_series() {
        use crate::{rolling_evaluate, Ewma, Naive};
        let s = diurnal(5, 24, 1.0);
        let hw = HoltWinters::new(0.3, 0.05, 0.3, 24).unwrap();
        let hw_mae = rolling_evaluate(&hw, &s, 60).unwrap().0;
        let naive_mae = rolling_evaluate(&Naive, &s, 60).unwrap().0;
        let ewma_mae = rolling_evaluate(&Ewma::new(0.3).unwrap(), &s, 60).unwrap().0;
        assert!(hw_mae < naive_mae, "hw {hw_mae} vs naive {naive_mae}");
        assert!(hw_mae < ewma_mae, "hw {hw_mae} vs ewma {ewma_mae}");
    }

    #[test]
    fn constant_series_is_a_fixed_point() {
        let hw = HoltWinters::new(0.5, 0.1, 0.5, 12).unwrap();
        let fc = hw.forecast(&vec![7.0; 60], 6).unwrap();
        for v in fc {
            assert!((v - 7.0).abs() < 1e-9);
        }
    }
}

//! Derivative-free Nelder–Mead simplex optimizer.
//!
//! Used to minimize the conditional sum of squares when fitting ARMA
//! coefficients — the "optimization libs are thinner" substitution: a
//! compact, dependency-free downhill-simplex implementation with the
//! standard reflection/expansion/contraction/shrink moves.

use serde::{Deserialize, Serialize};

/// Tuning knobs for [`nelder_mead`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NelderMeadOptions {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Convergence tolerance on the simplex's objective spread.
    pub f_tolerance: f64,
    /// Initial simplex step per coordinate.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions { max_evals: 2000, f_tolerance: 1e-10, initial_step: 0.1 }
    }
}

/// Minimizes `f` starting from `x0`, returning `(x_best, f_best)`.
///
/// `f` may return non-finite values to mark infeasible points; they are
/// treated as `+∞`.
///
/// # Examples
///
/// ```
/// use harmony_forecast::{nelder_mead, NelderMeadOptions};
///
/// let rosenbrock = |x: &[f64]| {
///     (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
/// };
/// let opts = NelderMeadOptions { max_evals: 20_000, ..Default::default() };
/// let (x, fx) = nelder_mead(rosenbrock, &[-1.2, 1.0], &opts);
/// assert!(fx < 1e-6, "f = {fx} at {x:?}");
/// assert!((x[0] - 1.0).abs() < 1e-2 && (x[1] - 1.0).abs() < 1e-2);
/// ```
pub fn nelder_mead<F>(mut f: F, x0: &[f64], options: &NelderMeadOptions) -> (Vec<f64>, f64)
where
    F: FnMut(&[f64]) -> f64,
{
    let n = x0.len();
    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    };
    if n == 0 {
        let v = eval(x0, &mut evals);
        return (x0.to_vec(), v);
    }

    // Initial simplex: x0 plus a step along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let fx0 = eval(x0, &mut evals);
    simplex.push((x0.to_vec(), fx0));
    for i in 0..n {
        let mut x = x0.to_vec();
        let step = if x[i].abs() > 1e-12 { options.initial_step * x[i].abs() } else { options.initial_step };
        x[i] += step;
        let fx = eval(&x, &mut evals);
        simplex.push((x, fx));
    }

    const ALPHA: f64 = 1.0; // reflection
    const GAMMA: f64 = 2.0; // expansion
    const RHO: f64 = 0.5; // contraction
    const SIGMA: f64 = 0.5; // shrink

    while evals < options.max_evals {
        simplex.sort_by(|a, b| f64::total_cmp(&a.1, &b.1));
        let best = simplex[0].1;
        let worst = simplex[n].1;
        if (worst - best).abs() <= options.f_tolerance * (1.0 + best.abs()) {
            break;
        }
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (x, _) in &simplex[..n] {
            for (c, v) in centroid.iter_mut().zip(x) {
                *c += v;
            }
        }
        for c in &mut centroid {
            *c /= n as f64;
        }
        let worst_x = simplex[n].0.clone();
        let blend = |t: f64| -> Vec<f64> {
            centroid.iter().zip(&worst_x).map(|(c, w)| c + t * (c - w)).collect()
        };
        // Reflect.
        let xr = blend(ALPHA);
        let fr = eval(&xr, &mut evals);
        if fr < simplex[0].1 {
            // Expand.
            let xe = blend(GAMMA);
            let fe = eval(&xe, &mut evals);
            simplex[n] = if fe < fr { (xe, fe) } else { (xr, fr) };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (xr, fr);
        } else {
            // Contract (outside if reflection helped over worst, else inside).
            let (xc, fc) = if fr < simplex[n].1 {
                let xc = blend(RHO);
                let fc = eval(&xc, &mut evals);
                (xc, fc)
            } else {
                let xc = blend(-RHO);
                let fc = eval(&xc, &mut evals);
                (xc, fc)
            };
            if fc < simplex[n].1.min(fr) {
                simplex[n] = (xc, fc);
            } else {
                // Shrink toward the best point.
                let best_x = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let x: Vec<f64> =
                        best_x.iter().zip(&entry.0).map(|(b, v)| b + SIGMA * (v - b)).collect();
                    let fx = eval(&x, &mut evals);
                    *entry = (x, fx);
                }
            }
        }
    }
    simplex.sort_by(|a, b| f64::total_cmp(&a.1, &b.1));
    let (x, fx) = simplex.swap_remove(0);
    (x, fx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let (x, fx) = nelder_mead(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2) + 5.0,
            &[0.0, 0.0],
            &NelderMeadOptions::default(),
        );
        assert!((x[0] - 3.0).abs() < 1e-4, "{x:?}");
        assert!((x[1] + 1.0).abs() < 1e-4);
        assert!((fx - 5.0).abs() < 1e-6);
    }

    #[test]
    fn handles_infeasible_regions() {
        // Objective is infinite for x < 0; optimum at boundary 0.
        let (x, _) = nelder_mead(
            |x| if x[0] < 0.0 { f64::NAN } else { x[0] * x[0] + 1.0 },
            &[2.0],
            &NelderMeadOptions::default(),
        );
        assert!(x[0].abs() < 1e-3, "x = {:?}", x);
    }

    #[test]
    fn zero_dimension_returns_input() {
        let (x, fx) = nelder_mead(|_| 7.0, &[], &NelderMeadOptions::default());
        assert!(x.is_empty());
        assert_eq!(fx, 7.0);
    }

    #[test]
    fn respects_eval_budget() {
        let mut count = 0usize;
        let opts = NelderMeadOptions { max_evals: 50, ..Default::default() };
        let _ = nelder_mead(
            |x| {
                count += 1;
                x.iter().map(|v| v * v).sum()
            },
            &[5.0, 5.0, 5.0],
            &opts,
        );
        assert!(count <= 60, "evaluations {count} should respect the budget");
    }

    #[test]
    fn four_dimensional_sphere() {
        let opts = NelderMeadOptions { max_evals: 10_000, ..Default::default() };
        let (x, fx) =
            nelder_mead(|x| x.iter().map(|v| (v - 1.0) * (v - 1.0)).sum(), &[4.0, -3.0, 2.0, 0.0], &opts);
        assert!(fx < 1e-8, "fx = {fx}, x = {x:?}");
    }
}

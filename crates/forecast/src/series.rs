//! Time-series utilities: differencing, autocorrelation, summary stats.

use crate::error::check_finite;
use crate::ForecastError;

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(series: &[f64]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    series.iter().sum::<f64>() / series.len() as f64
}

/// Population variance around the mean. Returns 0 for slices shorter
/// than 2.
pub fn variance(series: &[f64]) -> f64 {
    if series.len() < 2 {
        return 0.0;
    }
    let m = mean(series);
    series.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / series.len() as f64
}

/// First-order differencing applied `d` times: the `d`-fold Δ operator of
/// ARIMA's "I" component.
///
/// # Errors
///
/// Returns [`ForecastError::SeriesTooShort`] when fewer than `d + 1`
/// observations are supplied.
///
/// # Examples
///
/// ```
/// use harmony_forecast::series::difference;
///
/// let squares: Vec<f64> = (0..6).map(|t| (t * t) as f64).collect();
/// // Second difference of t^2 is the constant 2.
/// let dd = difference(&squares, 2)?;
/// assert!(dd.iter().all(|&v| (v - 2.0).abs() < 1e-12));
/// # Ok::<(), harmony_forecast::ForecastError>(())
/// ```
pub fn difference(series: &[f64], d: usize) -> Result<Vec<f64>, ForecastError> {
    if series.len() < d + 1 {
        return Err(ForecastError::SeriesTooShort { needed: d + 1, got: series.len() });
    }
    let mut out = series.to_vec();
    for _ in 0..d {
        out = out.windows(2).map(|w| w[1] - w[0]).collect();
    }
    Ok(out)
}

/// Undoes [`difference`]: given forecasts of the `d`-times differenced
/// series and the tail of the original series, reconstructs forecasts on
/// the original scale.
///
/// `tails[k]` must hold the last value of the series differenced `k`
/// times (`k = 0..d`), as produced by [`difference_tails`].
pub fn integrate(forecasts: &[f64], tails: &[f64]) -> Vec<f64> {
    let mut out = forecasts.to_vec();
    // Walk the integration chain from most-differenced to original.
    for &tail in tails.iter().rev() {
        let mut level = tail;
        for v in &mut out {
            level += *v;
            *v = level;
        }
    }
    out
}

/// The last value of the series at each differencing level `0..d`,
/// needed by [`integrate`].
///
/// # Errors
///
/// Same as [`difference`].
pub fn difference_tails(series: &[f64], d: usize) -> Result<Vec<f64>, ForecastError> {
    let mut tails = Vec::with_capacity(d);
    let mut current = series.to_vec();
    for _ in 0..d {
        // The tail is read before difference() runs, so an empty input
        // must be rejected here rather than unwrapped away.
        let &tail = current
            .last()
            .ok_or(ForecastError::SeriesTooShort { needed: d + 1, got: series.len() })?;
        tails.push(tail);
        current = difference(&current, 1)?;
    }
    Ok(tails)
}

/// Sample autocorrelation function up to `max_lag` (inclusive);
/// `acf[0] == 1`.
///
/// # Errors
///
/// Returns [`ForecastError::SeriesTooShort`] when the series is shorter
/// than `max_lag + 1` or has zero variance, and propagates non-finite
/// input errors.
pub fn acf(series: &[f64], max_lag: usize) -> Result<Vec<f64>, ForecastError> {
    check_finite(series)?;
    if series.len() < max_lag + 1 || series.len() < 2 {
        return Err(ForecastError::SeriesTooShort { needed: max_lag + 1, got: series.len() });
    }
    let m = mean(series);
    let denom: f64 = series.iter().map(|v| (v - m) * (v - m)).sum();
    if denom <= 0.0 {
        return Err(ForecastError::FitFailed { reason: "series has zero variance".to_owned() });
    }
    let mut out = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag {
        let num: f64 = series[lag..]
            .iter()
            .zip(&series[..series.len() - lag])
            .map(|(a, b)| (a - m) * (b - m))
            .sum();
        out.push(num / denom);
    }
    Ok(out)
}

/// Sample partial autocorrelation via the Durbin–Levinson recursion,
/// lags `1..=max_lag`.
///
/// # Errors
///
/// Same as [`acf`].
pub fn pacf(series: &[f64], max_lag: usize) -> Result<Vec<f64>, ForecastError> {
    let r = acf(series, max_lag)?;
    let mut pacf = Vec::with_capacity(max_lag);
    let mut phi_prev: Vec<f64> = Vec::new();
    let mut v = 1.0_f64; // prediction error variance (normalized)
    for k in 1..=max_lag {
        let mut num = r[k];
        for (j, &p) in phi_prev.iter().enumerate() {
            num -= p * r[k - 1 - j];
        }
        let phi_kk = if v.abs() > 1e-15 { num / v } else { 0.0 };
        let mut phi_new = Vec::with_capacity(k);
        for j in 0..k - 1 {
            phi_new.push(phi_prev[j] - phi_kk * phi_prev[k - 2 - j]);
        }
        phi_new.push(phi_kk);
        v *= 1.0 - phi_kk * phi_kk;
        pacf.push(phi_kk);
        phi_prev = phi_new;
    }
    Ok(pacf)
}

/// Yule–Walker AR(p) coefficients via Durbin–Levinson. Returns the `p`
/// AR coefficients `φ_1..φ_p` of the centered series.
///
/// # Errors
///
/// Same as [`acf`].
pub fn yule_walker(series: &[f64], p: usize) -> Result<Vec<f64>, ForecastError> {
    if p == 0 {
        return Ok(Vec::new());
    }
    let r = acf(series, p)?;
    let mut phi: Vec<f64> = Vec::new();
    let mut v = 1.0_f64;
    for k in 1..=p {
        let mut num = r[k];
        for (j, &c) in phi.iter().enumerate() {
            num -= c * r[k - 1 - j];
        }
        let phi_kk = if v.abs() > 1e-15 { num / v } else { 0.0 };
        let mut next = Vec::with_capacity(k);
        for j in 0..k - 1 {
            next.push(phi[j] - phi_kk * phi[k - 2 - j]);
        }
        next.push(phi_kk);
        v *= 1.0 - phi_kk * phi_kk;
        phi = next;
    }
    Ok(phi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn difference_and_integrate_roundtrip() {
        let s: Vec<f64> = (0..20).map(|t| (t as f64).powi(2) + 3.0).collect();
        for d in 0..=3usize {
            let diffed = difference(&s, d).unwrap();
            let tails = difference_tails(&s, d).unwrap();
            // Treat the "rest" of the differenced series as forecasts:
            // split at some point and reconstruct.
            let split = 10 - d;
            let history = &s[..s.len() - (diffed.len() - split)];
            let tails_h = difference_tails(history, d).unwrap();
            let reconstructed = integrate(&diffed[split..], &tails_h);
            for (a, b) in reconstructed.iter().zip(&s[history.len()..]) {
                assert!((a - b).abs() < 1e-9, "d={d}: {a} vs {b}");
            }
            assert_eq!(tails.len(), d);
        }
    }

    #[test]
    fn difference_too_short() {
        assert!(matches!(
            difference(&[1.0], 1),
            Err(ForecastError::SeriesTooShort { needed: 2, got: 1 })
        ));
    }

    #[test]
    fn difference_tails_rejects_empty_series() {
        // Used to panic: the tail is read before difference() gets a
        // chance to reject the empty input.
        assert!(matches!(
            difference_tails(&[], 1),
            Err(ForecastError::SeriesTooShort { needed: 2, got: 0 })
        ));
        assert_eq!(difference_tails(&[], 0).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn acf_lag0_is_one_and_detects_alternation() {
        let s: Vec<f64> = (0..40).map(|t| if t % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let r = acf(&s, 2).unwrap();
        assert!((r[0] - 1.0).abs() < 1e-12);
        assert!(r[1] < -0.9, "alternating series has strong negative lag-1 ACF");
        assert!(r[2] > 0.9);
    }

    #[test]
    fn acf_white_noise_is_small() {
        // Deterministic pseudo-noise via a simple LCG.
        let mut x = 123456789u64;
        let s: Vec<f64> = (0..2000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 33) as f64 / (1u64 << 30) as f64) - 1.0
            })
            .collect();
        let r = acf(&s, 5).unwrap();
        for (lag, v) in r.iter().enumerate().skip(1) {
            assert!(v.abs() < 0.1, "lag {lag}: {v}");
        }
    }

    #[test]
    fn acf_zero_variance_errors() {
        let s = vec![3.0; 10];
        assert!(matches!(acf(&s, 2), Err(ForecastError::FitFailed { .. })));
    }

    #[test]
    fn pacf_of_ar1_cuts_off_after_lag_one() {
        // AR(1): x_t = 0.7 x_{t-1} + e_t with deterministic noise.
        let mut x = 42u64;
        let mut noise = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 33) as f64 / (1u64 << 30) as f64) - 1.0
        };
        let mut s = vec![0.0f64];
        for _ in 0..3000 {
            let prev = *s.last().unwrap();
            s.push(0.7 * prev + noise());
        }
        let p = pacf(&s, 4).unwrap();
        assert!((p[0] - 0.7).abs() < 0.06, "pacf lag1 = {}", p[0]);
        for (lag, v) in p.iter().enumerate().skip(1) {
            assert!(v.abs() < 0.08, "pacf lag{} = {v}", lag + 1);
        }
    }

    #[test]
    fn yule_walker_recovers_ar2() {
        // AR(2): x_t = 0.5 x_{t-1} + 0.3 x_{t-2} + e_t.
        let mut x = 7u64;
        let mut noise = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 33) as f64 / (1u64 << 30) as f64) - 1.0
        };
        let mut s = vec![0.0f64, 0.0];
        for _ in 0..6000 {
            let n = s.len();
            s.push(0.5 * s[n - 1] + 0.3 * s[n - 2] + noise());
        }
        let phi = yule_walker(&s, 2).unwrap();
        assert!((phi[0] - 0.5).abs() < 0.06, "phi1 = {}", phi[0]);
        assert!((phi[1] - 0.3).abs() < 0.06, "phi2 = {}", phi[1]);
        assert!(yule_walker(&s, 0).unwrap().is_empty());
    }
}

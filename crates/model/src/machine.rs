//! Heterogeneous machine types and cluster catalogs.
//!
//! Two catalogs ship with the crate:
//!
//! * [`MachineCatalog::table2`] — the four simulated server models of the
//!   paper's Table II (Dell PowerEdge R210/R515, HP DL385 G7 / DL585 G7),
//!   with core counts and memory normalized so the largest machine
//!   (HP DL585 G7: 48 cores, 64 GB) has capacity `(1, 1)`.
//! * [`MachineCatalog::google_ten_types`] — a ten-platform catalog shaped
//!   like the machine heterogeneity the paper reports for the Google
//!   cluster (Fig. 5: >50% type 1, ~30% type 2, two ~1000-machine types,
//!   six sub-100-machine types).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{AccelResources, ModelError, PowerModel, Resources, SimDuration};

/// Index of a machine type within a [`MachineCatalog`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct MachineTypeId(pub usize);

impl fmt::Display for MachineTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mtype#{}", self.0)
    }
}

/// One machine platform: capacity, population, energy model, switching
/// characteristics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineType {
    /// Index within the owning catalog.
    pub id: MachineTypeId,
    /// Human-readable model name (e.g. `"Dell PowerEdge R210"`).
    pub name: String,
    /// Micro-architecture / platform identifier (the trace's PFID).
    pub platform_id: u32,
    /// Normalized `(cpu, mem)` capacity; the largest machine is `(1, 1)`.
    pub capacity: Resources,
    /// Number of machines of this type available in the cluster
    /// (`N^m_t` upper bound in the formulation).
    pub count: usize,
    /// Linear power model (Eq. 7 parameters).
    pub power: PowerModel,
    /// Time for a powered-off machine to become schedulable.
    pub boot_time: SimDuration,
    /// Switching cost `q_m` in dollars per on/off transition. Captures
    /// boot energy, wear, and container-reassignment overhead.
    pub switching_cost: f64,
    /// Normalized accelerator slots per machine (GPUs or similar);
    /// `0.0` for the pure-CPU platforms of the paper's Table II. Only
    /// accelerator-aware paths (the pricing subsystem's dollar
    /// objective) read this dimension.
    pub accel_capacity: f64,
}

impl MachineType {
    /// `true` if a container/task of the given size can ever be hosted on
    /// this machine type (schedulability, Section III-D's observation that
    /// "not every task can be scheduled on every type of machine").
    pub fn can_host(&self, demand: Resources) -> bool {
        demand.fits_within(self.capacity)
    }

    /// The full capacity vector including the accelerator axis.
    pub fn accel_resources(&self) -> AccelResources {
        AccelResources::new(self.capacity, self.accel_capacity)
    }

    /// `true` if an accelerator-extended demand fits this machine type.
    pub fn can_host_accel(&self, demand: AccelResources) -> bool {
        demand.fits_within(self.accel_resources())
    }

    /// Energy efficiency proxy: normalized capacity per peak watt.
    pub fn capacity_per_watt(&self) -> f64 {
        self.power.capacity_per_watt(self.capacity)
    }
}

/// An ordered collection of machine types describing a cluster.
///
/// # Examples
///
/// ```
/// use harmony_model::{MachineCatalog, Resources};
///
/// let catalog = MachineCatalog::table2();
/// assert_eq!(catalog.total_machines(), 10_000);
/// // Small tasks fit everywhere, the largest only on the DL585 G7.
/// let hosts = catalog.hosts_for(Resources::new(0.6, 0.6));
/// assert_eq!(hosts.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineCatalog {
    types: Vec<MachineType>,
}

impl MachineCatalog {
    /// Builds a catalog from machine types, re-assigning ids to match the
    /// vector order.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyCatalog`] when `types` is empty, and
    /// [`ModelError::InvalidMachineType`] when a capacity is not a valid
    /// resource vector or a count is zero.
    pub fn new(mut types: Vec<MachineType>) -> Result<Self, ModelError> {
        if types.is_empty() {
            return Err(ModelError::EmptyCatalog);
        }
        for (i, ty) in types.iter_mut().enumerate() {
            ty.id = MachineTypeId(i);
            if !ty.capacity.is_valid() || ty.capacity == Resources::ZERO {
                return Err(ModelError::InvalidMachineType {
                    name: ty.name.clone(),
                    reason: format!("capacity {} is invalid", ty.capacity),
                });
            }
            if ty.count == 0 {
                return Err(ModelError::InvalidMachineType {
                    name: ty.name.clone(),
                    reason: "count must be positive".to_owned(),
                });
            }
        }
        Ok(MachineCatalog { types })
    }

    /// The Table II evaluation cluster: 10,000 machines across four models.
    ///
    /// Power-model constants are estimated from public Energy Star
    /// server measurements (the paper's source \[2\]); see DESIGN.md §6 for
    /// the substitution note. The ordering they induce reproduces Fig. 9:
    /// the R210 draws the least at every load it can serve, the DL585 G7
    /// the most.
    // Invariant: the literal catalog below is non-empty with positive
    // counts and capacities, so construction cannot fail.
    #[allow(clippy::expect_used)]
    pub fn table2() -> Self {
        // Largest machine: HP DL585 G7 = 4 sockets x 12 cores, 64 GB.
        const MAX_CORES: f64 = 48.0;
        const MAX_MEM_GB: f64 = 64.0;
        let spec = |name: &str,
                    pfid: u32,
                    cores: f64,
                    mem_gb: f64,
                    count: usize,
                    idle: f64,
                    alpha_cpu: f64,
                    alpha_mem: f64,
                    boot_s: f64,
                    q: f64| MachineType {
            id: MachineTypeId(0),
            name: name.to_owned(),
            platform_id: pfid,
            capacity: Resources::new(cores / MAX_CORES, mem_gb / MAX_MEM_GB),
            count,
            power: PowerModel::new(idle, Resources::new(alpha_cpu, alpha_mem)),
            boot_time: SimDuration::from_secs(boot_s),
            switching_cost: q,
            accel_capacity: 0.0,
        };
        MachineCatalog::new(vec![
            spec("Dell PowerEdge R210", 1, 4.0, 4.0, 7000, 40.0, 65.0, 12.0, 90.0, 0.001),
            spec("Dell PowerEdge R515", 2, 12.0, 32.0, 1500, 105.0, 180.0, 35.0, 120.0, 0.003),
            spec("HP DL385 G7", 3, 24.0, 16.0, 1000, 130.0, 250.0, 28.0, 120.0, 0.004),
            spec("HP DL585 G7", 4, 48.0, 64.0, 500, 280.0, 450.0, 70.0, 180.0, 0.008),
        ])
        .expect("table2 catalog is statically valid")
    }

    /// The Table II cluster extended with one accelerator-bearing
    /// platform: an HP SL390s G7-style GPU node (2 sockets x 6 cores,
    /// 48 GB, 4 GPU slots). Pure-CPU demand never needs it — its
    /// compute capacity is dominated by the DL585 G7 — so existing
    /// energy-objective plans are unaffected; it exists for workloads
    /// with per-class accelerator demand priced by `harmony-pricing`.
    // Invariant: table2() is valid and the appended type has positive
    // count and capacity, so re-validation cannot fail.
    #[allow(clippy::expect_used)]
    pub fn table2_with_accel() -> Self {
        const MAX_CORES: f64 = 48.0;
        const MAX_MEM_GB: f64 = 64.0;
        let mut types: Vec<MachineType> = MachineCatalog::table2().iter().cloned().collect();
        types.push(MachineType {
            id: MachineTypeId(0),
            name: "HP SL390s G7 (GPU)".to_owned(),
            platform_id: 5,
            capacity: Resources::new(12.0 / MAX_CORES, 48.0 / MAX_MEM_GB),
            count: 200,
            power: PowerModel::new(220.0, Resources::new(160.0, 30.0)),
            boot_time: SimDuration::from_secs(180.0),
            switching_cost: 0.010,
            accel_capacity: 4.0,
        });
        MachineCatalog::new(types).expect("table2_with_accel catalog is statically valid")
    }

    /// A ten-platform catalog mirroring the population skew of the Google
    /// cluster's machine mix (Fig. 5): two dominant platforms, two
    /// mid-size populations, six rare configurations.
    // Invariant: the literal catalog below is non-empty with positive
    // counts and capacities, so construction cannot fail.
    #[allow(clippy::expect_used)]
    pub fn google_ten_types() -> Self {
        let spec = |name: &str, pfid: u32, cpu: f64, mem: f64, count: usize| MachineType {
            id: MachineTypeId(0),
            name: name.to_owned(),
            platform_id: pfid,
            capacity: Resources::new(cpu, mem),
            count,
            power: PowerModel::new(
                60.0 + 220.0 * cpu,
                Resources::new(120.0 + 330.0 * cpu, 15.0 + 55.0 * mem),
            ),
            boot_time: SimDuration::from_secs(120.0),
            switching_cost: 0.002 + 0.006 * cpu,
            accel_capacity: 0.0,
        };
        MachineCatalog::new(vec![
            spec("type-1", 1, 0.50, 0.50, 6200),
            spec("type-2", 1, 0.50, 0.25, 3700),
            spec("type-3", 2, 0.50, 0.75, 1000),
            spec("type-4", 2, 1.00, 1.00, 950),
            spec("type-5", 3, 0.25, 0.25, 95),
            spec("type-6", 1, 0.50, 0.12, 80),
            spec("type-7", 2, 0.50, 0.03, 60),
            spec("type-8", 3, 0.50, 0.97, 40),
            spec("type-9", 1, 1.00, 0.50, 25),
            spec("type-10", 3, 0.50, 0.06, 10),
        ])
        .expect("google_ten_types catalog is statically valid")
    }

    /// Number of machine types (`M` in the formulation).
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// `true` if the catalog holds no types (never true for a constructed
    /// catalog; provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// The machine type at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this catalog.
    pub fn machine_type(&self, id: MachineTypeId) -> &MachineType {
        &self.types[id.0]
    }

    /// The machine type at `id`, or `None` when out of range.
    pub fn get(&self, id: MachineTypeId) -> Option<&MachineType> {
        self.types.get(id.0)
    }

    /// Iterates over machine types in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, MachineType> {
        self.types.iter()
    }

    /// Total machines across all types.
    pub fn total_machines(&self) -> usize {
        self.types.iter().map(|t| t.count).sum()
    }

    /// Total normalized capacity across all machines of all types.
    pub fn total_capacity(&self) -> Resources {
        self.types.iter().map(|t| t.capacity * t.count as f64).sum()
    }

    /// A copy of this catalog with every population divided by
    /// `divisor` (rounded up, so no type disappears). Used to run the
    /// paper's 10,000-machine evaluation at laptop scale while keeping
    /// the heterogeneity mix intact.
    ///
    /// # Panics
    ///
    /// Panics if `divisor == 0`.
    // Invariant: `self` was validated at construction and div_ceil
    // keeps every count positive, so re-validation cannot fail.
    #[allow(clippy::expect_used)]
    pub fn scaled(&self, divisor: usize) -> MachineCatalog {
        assert!(divisor > 0, "divisor must be positive");
        let types = self
            .types
            .iter()
            .map(|t| MachineType { count: t.count.div_ceil(divisor), ..t.clone() })
            .collect();
        MachineCatalog::new(types).expect("scaling preserves validity")
    }

    /// Machine types able to host a task/container of size `demand`.
    pub fn hosts_for(&self, demand: Resources) -> Vec<MachineTypeId> {
        self.types.iter().filter(|t| t.can_host(demand)).map(|t| t.id).collect()
    }

    /// Machine type ids ordered by decreasing energy efficiency
    /// (capacity per peak watt) — the provisioning order of the
    /// heterogeneity-oblivious baseline.
    pub fn by_energy_efficiency(&self) -> Vec<MachineTypeId> {
        let mut ids: Vec<MachineTypeId> = self.types.iter().map(|t| t.id).collect();
        ids.sort_by(|a, b| {
            let ea = self.machine_type(*a).capacity_per_watt();
            let eb = self.machine_type(*b).capacity_per_watt();
            f64::total_cmp(&eb, &ea)
        });
        ids
    }
}

impl<'a> IntoIterator for &'a MachineCatalog {
    type Item = &'a MachineType;
    type IntoIter = std::slice::Iter<'a, MachineType>;

    fn into_iter(self) -> Self::IntoIter {
        self.types.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let c = MachineCatalog::table2();
        assert_eq!(c.len(), 4);
        assert_eq!(c.total_machines(), 10_000);
        let names: Vec<&str> = c.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Dell PowerEdge R210",
                "Dell PowerEdge R515",
                "HP DL385 G7",
                "HP DL585 G7"
            ]
        );
        // Normalization: DL585 G7 is the unit machine.
        assert_eq!(c.machine_type(MachineTypeId(3)).capacity, Resources::ONE);
        // R515: 12/48 cores, 32/64 GB.
        assert_eq!(c.machine_type(MachineTypeId(1)).capacity, Resources::new(0.25, 0.5));
        // DL385 G7: 24/48 cores, 16/64 GB.
        assert_eq!(c.machine_type(MachineTypeId(2)).capacity, Resources::new(0.5, 0.25));
        // R210: 4/48 cores, 4/64 GB.
        let r210 = c.machine_type(MachineTypeId(0));
        assert!((r210.capacity.cpu - 4.0 / 48.0).abs() < 1e-12);
        assert!((r210.capacity.mem - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn fig9_power_ordering_holds() {
        // At any CPU load a machine can serve, smaller machines must draw
        // less: R210 < R515 < DL385 < DL585 at 5% CPU.
        let c = MachineCatalog::table2();
        let u = Resources::new(0.05, 0.05);
        let draws: Vec<f64> = c.iter().map(|t| t.power.power_watts(u)).collect();
        for w in draws.windows(2) {
            assert!(w[0] < w[1], "power ordering violated: {draws:?}");
        }
    }

    #[test]
    fn schedulability_gaps_exist() {
        // A 0.2-CPU container does not fit on the R210 (Fig. 9 discussion).
        let c = MachineCatalog::table2();
        let hosts = c.hosts_for(Resources::new(0.2, 0.01));
        assert!(!hosts.contains(&MachineTypeId(0)));
        assert_eq!(hosts.len(), 3);
        // And a full-machine task fits only on the DL585 G7.
        assert_eq!(c.hosts_for(Resources::ONE), vec![MachineTypeId(3)]);
    }

    #[test]
    fn accel_catalog_extends_table2() {
        let base = MachineCatalog::table2();
        let c = MachineCatalog::table2_with_accel();
        assert_eq!(c.len(), base.len() + 1);
        // The first four types are Table II verbatim (ids included).
        for (a, b) in base.iter().zip(c.iter()) {
            assert_eq!(a, b);
        }
        let gpu = c.machine_type(MachineTypeId(4));
        assert!(gpu.accel_capacity > 0.0);
        assert!(gpu.can_host_accel(AccelResources::new(gpu.capacity, gpu.accel_capacity)));
        assert!(!gpu.can_host_accel(AccelResources::new(Resources::ZERO, 5.0)));
        // Every Table II platform stays accelerator-free.
        for t in base.iter() {
            assert_eq!(t.accel_capacity, 0.0);
            assert!(!t.can_host_accel(AccelResources::new(Resources::ZERO, 1.0)));
        }
    }

    #[test]
    fn ten_type_catalog_population_shape() {
        let c = MachineCatalog::google_ten_types();
        assert_eq!(c.len(), 10);
        let total = c.total_machines() as f64;
        let first = c.machine_type(MachineTypeId(0)).count as f64;
        let second = c.machine_type(MachineTypeId(1)).count as f64;
        assert!(first / total > 0.5, "type 1 should be >50% of machines");
        assert!(second / total > 0.25, "type 2 should be ~30% of machines");
        // Six rare types under 100 machines each.
        let rare = c.iter().filter(|t| t.count < 100).count();
        assert_eq!(rare, 6);
    }

    #[test]
    fn energy_efficiency_ordering_is_permutation() {
        let c = MachineCatalog::table2();
        let order = c.by_energy_efficiency();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(sorted, (0..4).map(MachineTypeId).collect::<Vec<_>>());
        for w in order.windows(2) {
            assert!(
                c.machine_type(w[0]).capacity_per_watt() >= c.machine_type(w[1]).capacity_per_watt()
            );
        }
    }

    #[test]
    fn catalog_validation_rejects_bad_input() {
        assert!(matches!(MachineCatalog::new(vec![]), Err(ModelError::EmptyCatalog)));
        let mut ty = MachineCatalog::table2().machine_type(MachineTypeId(0)).clone();
        ty.count = 0;
        assert!(MachineCatalog::new(vec![ty.clone()]).is_err());
        ty.count = 5;
        ty.capacity = Resources::ZERO;
        assert!(MachineCatalog::new(vec![ty]).is_err());
    }

    #[test]
    fn ids_are_reassigned_in_order() {
        let mut types: Vec<MachineType> = MachineCatalog::table2().iter().cloned().collect();
        types.reverse();
        let c = MachineCatalog::new(types).unwrap();
        for (i, t) in c.iter().enumerate() {
            assert_eq!(t.id, MachineTypeId(i));
        }
        assert_eq!(c.machine_type(MachineTypeId(0)).name, "HP DL585 G7");
    }

    #[test]
    fn total_capacity_sums_over_population() {
        let c = MachineCatalog::new(vec![
            MachineType {
                id: MachineTypeId(0),
                name: "a".into(),
                platform_id: 1,
                capacity: Resources::new(0.5, 0.25),
                count: 4,
                power: PowerModel::new(10.0, Resources::ZERO),
                boot_time: SimDuration::ZERO,
                switching_cost: 0.0,
                accel_capacity: 0.0,
            },
        ])
        .unwrap();
        assert_eq!(c.total_capacity(), Resources::new(2.0, 1.0));
    }
}

//! Task-class identifiers and per-class statistics.
//!
//! A *task class* is the unit HARMONY provisions for: a cluster of tasks
//! with similar priority group, resource shape, and duration regime
//! (Section V). The clustering algorithm itself lives in `harmony-kmeans`;
//! this module only defines the stable identifier and the summary
//! statistics the queueing and provisioning layers consume.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{PriorityGroup, Resources, SimDuration};

/// Stable identifier of a task class (`n ∈ N` in the formulation).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TaskClassId(pub usize);

impl fmt::Display for TaskClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// Summary statistics of a task class, sufficient for container sizing
/// (Eq. 3) and the M/G/N delay model (Eq. 1).
///
/// # Examples
///
/// ```
/// use harmony_model::{ClassStats, PriorityGroup, Resources, SimDuration, TaskClassId};
///
/// let stats = ClassStats {
///     id: TaskClassId(0),
///     group: PriorityGroup::Production,
///     mean_demand: Resources::new(0.1, 0.05),
///     std_demand: Resources::new(0.02, 0.01),
///     mean_duration: SimDuration::from_secs(300.0),
///     cv2_duration: 1.5,
///     count: 1000,
/// };
/// // Eq. 3 container size with Z = 2: c = mu + Z * sigma.
/// let c = stats.container_size(2.0);
/// assert_eq!(c, Resources::new(0.14, 0.07));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// The class this summarizes.
    pub id: TaskClassId,
    /// Priority group of the member tasks.
    pub group: PriorityGroup,
    /// Mean resource demand `μ_n` per dimension.
    pub mean_demand: Resources,
    /// Demand standard deviation `σ_n` per dimension.
    pub std_demand: Resources,
    /// Mean task duration (`1/μ_i` service rate in Eq. 1 terms).
    pub mean_duration: SimDuration,
    /// Squared coefficient of variation of duration, `CV²_i` in Eq. 1.
    pub cv2_duration: f64,
    /// Number of member tasks observed when the class was formed.
    pub count: usize,
}

impl ClassStats {
    /// The container reservation from the Gaussian statistical-multiplexing
    /// argument of Section VII-A: `c_nr = μ_nr + Z·σ_nr`, clamped to the
    /// normalized machine range `[0, 1]`.
    pub fn container_size(&self, z: f64) -> Resources {
        (self.mean_demand + self.std_demand * z).clamp_components(1.0)
    }

    /// Mean service rate `μ_i` in tasks per second (reciprocal of mean
    /// duration), or `f64::INFINITY` for an all-instantaneous class.
    pub fn service_rate(&self) -> f64 {
        let d = self.mean_duration.as_secs();
        if d > 0.0 {
            1.0 / d
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ClassStats {
        ClassStats {
            id: TaskClassId(3),
            group: PriorityGroup::Other,
            mean_demand: Resources::new(0.2, 0.1),
            std_demand: Resources::new(0.05, 0.02),
            mean_duration: SimDuration::from_secs(200.0),
            cv2_duration: 2.0,
            count: 42,
        }
    }

    #[test]
    fn container_size_is_mean_plus_z_sigma() {
        let s = stats();
        assert_eq!(s.container_size(0.0), s.mean_demand);
        let c = s.container_size(1.0);
        assert!((c.cpu - 0.25).abs() < 1e-12);
        assert!((c.mem - 0.12).abs() < 1e-12);
    }

    #[test]
    fn container_size_clamps_to_unit_machine() {
        let mut s = stats();
        s.mean_demand = Resources::new(0.9, 0.9);
        s.std_demand = Resources::new(0.5, 0.5);
        assert_eq!(s.container_size(3.0), Resources::ONE);
    }

    #[test]
    fn service_rate_is_reciprocal_duration() {
        let s = stats();
        assert!((s.service_rate() - 0.005).abs() < 1e-12);
        let mut zero = s;
        zero.mean_duration = SimDuration::ZERO;
        assert!(zero.service_rate().is_infinite());
    }

    #[test]
    fn display_id() {
        assert_eq!(format!("{}", TaskClassId(9)), "class#9");
    }
}

//! Strongly-typed simulation clock.
//!
//! The simulator and controllers operate on a continuous clock measured in
//! seconds. [`SimTime`] is an absolute instant, [`SimDuration`] a span;
//! both are thin validated wrappers around `f64` that provide a total order
//! (construction rejects NaN), so they can key event queues directly.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute instant on the simulation clock, in seconds since the start
/// of the trace.
///
/// # Examples
///
/// ```
/// use harmony_model::{SimDuration, SimTime};
///
/// let t = SimTime::from_secs(10.0) + SimDuration::from_secs(5.0);
/// assert_eq!(t, SimTime::from_secs(15.0));
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimTime(f64);

/// A span of simulated time, in seconds. May not be negative or NaN.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimDuration(f64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant `secs` seconds after the origin.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN.
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        SimTime(secs)
    }

    /// Creates an instant `hours` hours after the origin.
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Seconds since the origin.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Hours since the origin.
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Days since the origin.
    pub fn as_days(self) -> f64 {
        self.0 / 86_400.0
    }

    /// The non-negative span from `earlier` to `self`, saturating at zero
    /// when `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_secs((self.0 - earlier.0).max(0.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a span of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or NaN.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs >= 0.0, "SimDuration must be non-negative, got {secs}");
        SimDuration(secs)
    }

    /// Creates a span of `mins` minutes.
    pub fn from_mins(mins: f64) -> Self {
        Self::from_secs(mins * 60.0)
    }

    /// Creates a span of `hours` hours.
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Creates a span of `days` days.
    pub fn from_days(days: f64) -> Self {
        Self::from_secs(days * 86_400.0)
    }

    /// The span in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The span in hours.
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Construction forbids NaN; total_cmp keeps the ordering total
        // even if one slips through (no panic in the event loop).
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Eq for SimDuration {}

impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for SimDuration {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics if `rhs` is later than `self` (a negative span); use
    /// [`SimTime::saturating_since`] if clamping is intended.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics if `rhs > self`.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;

    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.1}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t0 = SimTime::from_secs(100.0);
        let d = SimDuration::from_secs(50.0);
        assert_eq!(t0 + d, SimTime::from_secs(150.0));
        assert_eq!((t0 + d) - t0, d);
        assert_eq!(d + d, SimDuration::from_secs(100.0));
        assert_eq!(d * 2.0, SimDuration::from_secs(100.0));
        assert_eq!(d / SimDuration::from_secs(25.0), 2.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut ts = [
            SimTime::from_secs(3.0),
            SimTime::from_secs(1.0),
            SimTime::from_secs(2.0),
        ];
        ts.sort();
        assert_eq!(ts[0], SimTime::from_secs(1.0));
        assert_eq!(ts[2], SimTime::from_secs(3.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(5.0);
        let b = SimTime::from_secs(10.0);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(5.0));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(SimDuration::from_hours(2.0).as_secs(), 7200.0);
        assert_eq!(SimDuration::from_days(1.0).as_hours(), 24.0);
        assert_eq!(SimDuration::from_mins(3.0).as_secs(), 180.0);
        assert_eq!(SimTime::from_hours(1.0).as_secs(), 3600.0);
        assert!((SimTime::from_secs(86_400.0).as_days() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(|i| SimDuration::from_secs(i as f64)).sum();
        assert_eq!(total, SimDuration::from_secs(10.0));
    }
}

//! Hand-written serde impls for the types that cross a serialization
//! boundary (JSONL traces).
//!
//! The vendored `serde` stand-in has no derive machinery (its derive
//! macros are no-ops), so [`Task`] and its component types implement the
//! value-model traits explicitly here. The encoding matches what the
//! upstream derives would produce: newtypes are transparent, structs are
//! objects keyed by field name.

use serde::value::{DeError, Value};
use serde::{Deserialize, Serialize};

use crate::{
    AccelResources, JobId, MachineTypeId, Priority, Resources, SchedulingClass, SimDuration,
    SimTime, Task, TaskClassId, TaskId,
};

macro_rules! impl_u64_newtype {
    ($($t:ident),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                self.0.to_value()
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                u64::from_value(v).map($t)
            }
        }
    )*};
}

impl_u64_newtype!(TaskId, JobId);

macro_rules! impl_usize_newtype {
    ($($t:ident),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                self.0.to_value()
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                usize::from_value(v).map($t)
            }
        }
    )*};
}

impl_usize_newtype!(MachineTypeId, TaskClassId);

impl Serialize for SimTime {
    fn to_value(&self) -> Value {
        self.as_secs().to_value()
    }
}

impl Deserialize for SimTime {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = f64::from_value(v)?;
        if secs.is_nan() {
            return Err(DeError::new("SimTime must not be NaN"));
        }
        Ok(SimTime::from_secs(secs))
    }
}

impl Serialize for SimDuration {
    fn to_value(&self) -> Value {
        self.as_secs().to_value()
    }
}

impl Deserialize for SimDuration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = f64::from_value(v)?;
        if secs.is_nan() || secs < 0.0 {
            return Err(DeError::new("SimDuration must be non-negative"));
        }
        Ok(SimDuration::from_secs(secs))
    }
}

impl Serialize for Resources {
    fn to_value(&self) -> Value {
        let mut map = std::collections::BTreeMap::new();
        map.insert("cpu".to_owned(), self.cpu.to_value());
        map.insert("mem".to_owned(), self.mem.to_value());
        Value::Object(map)
    }
}

impl Deserialize for Resources {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Resources {
            cpu: f64::from_value(v.field("cpu")?)?,
            mem: f64::from_value(v.field("mem")?)?,
        })
    }
}

impl Serialize for AccelResources {
    fn to_value(&self) -> Value {
        let mut map = std::collections::BTreeMap::new();
        map.insert("compute".to_owned(), self.compute.to_value());
        map.insert("accel".to_owned(), self.accel.to_value());
        Value::Object(map)
    }
}

impl Deserialize for AccelResources {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let out = AccelResources {
            compute: Resources::from_value(v.field("compute")?)?,
            accel: f64::from_value(v.field("accel")?)?,
        };
        if !out.is_valid() {
            return Err(DeError::new("AccelResources must be finite and non-negative"));
        }
        Ok(out)
    }
}

impl Serialize for Priority {
    fn to_value(&self) -> Value {
        self.level().to_value()
    }
}

impl Deserialize for Priority {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let level = u8::from_value(v)?;
        Priority::new(level).map_err(|e| DeError::new(e.to_string()))
    }
}

impl Serialize for SchedulingClass {
    fn to_value(&self) -> Value {
        self.level().to_value()
    }
}

impl Deserialize for SchedulingClass {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let level = u8::from_value(v)?;
        SchedulingClass::new(level).map_err(|e| DeError::new(e.to_string()))
    }
}

impl Serialize for Task {
    fn to_value(&self) -> Value {
        let mut map = std::collections::BTreeMap::new();
        map.insert("id".to_owned(), self.id.to_value());
        map.insert("job".to_owned(), self.job.to_value());
        map.insert("arrival".to_owned(), self.arrival.to_value());
        map.insert("duration".to_owned(), self.duration.to_value());
        map.insert("demand".to_owned(), self.demand.to_value());
        map.insert("priority".to_owned(), self.priority.to_value());
        map.insert("sched_class".to_owned(), self.sched_class.to_value());
        Value::Object(map)
    }
}

impl Deserialize for Task {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Task {
            id: TaskId::from_value(v.field("id")?)?,
            job: JobId::from_value(v.field("job")?)?,
            arrival: SimTime::from_value(v.field("arrival")?)?,
            duration: SimDuration::from_value(v.field("duration")?)?,
            demand: Resources::from_value(v.field("demand")?)?,
            priority: Priority::from_value(v.field("priority")?)?,
            sched_class: SchedulingClass::from_value(v.field("sched_class")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_priority_rejected_on_read() {
        let v = Value::Number(15.0);
        assert!(Priority::from_value(&v).is_err());
    }

    #[test]
    fn negative_duration_rejected_on_read() {
        let v = Value::Number(-1.0);
        assert!(SimDuration::from_value(&v).is_err());
    }

    #[test]
    fn accel_resources_round_trip_and_reject() {
        let a = AccelResources::new(Resources::new(0.25, 0.5), 2.0);
        let back = AccelResources::from_value(&a.to_value()).unwrap();
        assert_eq!(a, back);
        let bad = AccelResources { compute: Resources::new(0.1, 0.1), accel: -1.0 };
        assert!(AccelResources::from_value(&bad.to_value()).is_err());
    }
}

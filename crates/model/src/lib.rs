//! Domain model shared by every crate in the HARMONY workspace.
//!
//! This crate defines the vocabulary of the system reproduced from
//! *"HARMONY: Dynamic Heterogeneity-Aware Resource Provisioning in the
//! Cloud"* (ICDCS 2013):
//!
//! * [`Resources`] — a fixed-dimension (CPU, memory) resource vector, the
//!   set `R` of the paper with `|R| = 2`.
//! * [`Task`], [`Priority`], [`PriorityGroup`], [`SchedulingClass`] — the
//!   workload units of the Google-trace data model analysed in Section III.
//! * [`MachineType`], [`MachineCatalog`] — heterogeneous machine platforms;
//!   [`MachineCatalog::table2`] encodes the four simulated server models of
//!   Table II.
//! * [`PowerModel`], [`EnergyPrice`] — the linear utilization→power model of
//!   Eq. (7) and the run-time electricity price `p_t`.
//! * [`SimTime`], [`SimDuration`] — strongly-typed simulation clock values.
//!
//! # Examples
//!
//! ```
//! use harmony_model::{MachineCatalog, Resources};
//!
//! let catalog = MachineCatalog::table2();
//! assert_eq!(catalog.len(), 4);
//! // The largest machine (HP DL585 G7) is normalized to capacity 1.0.
//! let largest = catalog.iter().map(|m| m.capacity).fold(Resources::ZERO, Resources::max);
//! assert_eq!(largest, Resources::new(1.0, 1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod class;
mod error;
mod machine;
mod power;
mod resources;
mod serde_impls;
mod task;
mod time;

pub use class::{ClassStats, TaskClassId};
pub use error::ModelError;
pub use machine::{MachineCatalog, MachineType, MachineTypeId};
pub use power::{EnergyPrice, PowerModel};
pub use resources::{AccelResources, ResourceKind, Resources, NUM_RESOURCES};
pub use task::{JobId, Priority, PriorityGroup, SchedulingClass, Task, TaskId};
pub use time::{SimDuration, SimTime};

//! Error type for domain-model validation.

use std::error::Error;
use std::fmt;

use crate::TaskId;

/// Errors returned by validating constructors in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A priority level above 11 was supplied.
    PriorityOutOfRange(u8),
    /// A scheduling class above 3 was supplied.
    SchedulingClassOutOfRange(u8),
    /// A task violated a structural invariant.
    InvalidTask {
        /// The offending task.
        id: TaskId,
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// A machine catalog was constructed with no machine types.
    EmptyCatalog,
    /// A machine type violated a structural invariant.
    InvalidMachineType {
        /// The offending machine type's name.
        name: String,
        /// Human-readable description of the violated invariant.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::PriorityOutOfRange(p) => {
                write!(f, "priority level {p} is outside the trace range 0..=11")
            }
            ModelError::SchedulingClassOutOfRange(c) => {
                write!(f, "scheduling class {c} is outside the trace range 0..=3")
            }
            ModelError::InvalidTask { id, reason } => write!(f, "invalid {id}: {reason}"),
            ModelError::EmptyCatalog => f.write_str("machine catalog must contain at least one type"),
            ModelError::InvalidMachineType { name, reason } => {
                write!(f, "invalid machine type {name:?}: {reason}")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_prose() {
        let e = ModelError::PriorityOutOfRange(13);
        assert_eq!(e.to_string(), "priority level 13 is outside the trace range 0..=11");
        let e = ModelError::InvalidTask { id: TaskId(2), reason: "x".into() };
        assert!(e.to_string().contains("task#2"));
        let e = ModelError::EmptyCatalog;
        assert!(e.to_string().contains("at least one"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<ModelError>();
    }
}

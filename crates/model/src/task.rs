//! Workload units: tasks, jobs, priorities, scheduling classes.
//!
//! This mirrors the Google cluster-trace data model analysed in Section III
//! of the paper: a *job* consists of one or more *tasks*; each task is
//! scheduled on a single machine and carries a normalized `(cpu, mem)`
//! demand, a priority in `0..=11`, and a scheduling (latency-sensitivity)
//! class in `0..=3`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ModelError, Resources, SimDuration, SimTime};

/// Opaque identifier of a task, unique within a trace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TaskId(pub u64);

/// Opaque identifier of a job (a set of tasks submitted together).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct JobId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// A task priority in the Google-trace range `0..=11`.
///
/// Priorities are grouped into the three [`PriorityGroup`]s the paper works
/// at: *gratis* (0–1), *other* (2–8) and *production* (9–11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Priority(u8);

impl Priority {
    /// Lowest (free-tier) priority.
    pub const MIN: Priority = Priority(0);
    /// Highest (production) priority.
    pub const MAX: Priority = Priority(11);

    /// Creates a priority, validating the trace range `0..=11`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::PriorityOutOfRange`] for values above 11.
    pub fn new(level: u8) -> Result<Self, ModelError> {
        if level <= Self::MAX.0 {
            Ok(Priority(level))
        } else {
            Err(ModelError::PriorityOutOfRange(level))
        }
    }

    /// The raw level in `0..=11`.
    pub fn level(self) -> u8 {
        self.0
    }

    /// The coarse group this priority belongs to.
    pub fn group(self) -> PriorityGroup {
        PriorityGroup::of_level(self.0)
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The three coarse priority groups used throughout the paper
/// (Reiss et al.'s grouping of the 12 trace priorities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PriorityGroup {
    /// Priorities 0–1: free-tier / best-effort tasks.
    Gratis,
    /// Priorities 2–8: everything in between.
    Other,
    /// Priorities 9–11: revenue-generating, latency-sensitive tasks.
    Production,
}

impl PriorityGroup {
    /// All groups, lowest priority first.
    pub const ALL: [PriorityGroup; 3] =
        [PriorityGroup::Gratis, PriorityGroup::Other, PriorityGroup::Production];

    /// Maps a raw priority level to its group. Levels above 11 saturate to
    /// [`PriorityGroup::Production`].
    pub fn of_level(level: u8) -> Self {
        match level {
            0..=1 => PriorityGroup::Gratis,
            2..=8 => PriorityGroup::Other,
            _ => PriorityGroup::Production,
        }
    }

    /// A dense index in `0..3`, ordered gratis < other < production.
    pub fn index(self) -> usize {
        match self {
            PriorityGroup::Gratis => 0,
            PriorityGroup::Other => 1,
            PriorityGroup::Production => 2,
        }
    }

    /// The inclusive range of raw priority levels in this group.
    pub fn level_range(self) -> (u8, u8) {
        match self {
            PriorityGroup::Gratis => (0, 1),
            PriorityGroup::Other => (2, 8),
            PriorityGroup::Production => (9, 11),
        }
    }
}

impl fmt::Display for PriorityGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PriorityGroup::Gratis => f.write_str("gratis"),
            PriorityGroup::Other => f.write_str("other"),
            PriorityGroup::Production => f.write_str("production"),
        }
    }
}

/// A latency-sensitivity class in `0..=3` (0 = batch, 3 = most
/// latency-sensitive, e.g. user-facing servers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SchedulingClass(u8);

impl SchedulingClass {
    /// Least latency-sensitive (batch).
    pub const BATCH: SchedulingClass = SchedulingClass(0);
    /// Most latency-sensitive (serving).
    pub const SERVING: SchedulingClass = SchedulingClass(3);

    /// Creates a scheduling class, validating the range `0..=3`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::SchedulingClassOutOfRange`] for values above 3.
    pub fn new(class: u8) -> Result<Self, ModelError> {
        if class <= 3 {
            Ok(SchedulingClass(class))
        } else {
            Err(ModelError::SchedulingClassOutOfRange(class))
        }
    }

    /// The raw class in `0..=3`.
    pub fn level(self) -> u8 {
        self.0
    }
}

impl fmt::Display for SchedulingClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sc{}", self.0)
    }
}

/// One schedulable unit of work.
///
/// # Examples
///
/// ```
/// use harmony_model::{Priority, PriorityGroup, Resources, SchedulingClass, SimDuration,
///     SimTime, Task, TaskId, JobId};
///
/// let task = Task {
///     id: TaskId(1),
///     job: JobId(1),
///     arrival: SimTime::ZERO,
///     duration: SimDuration::from_secs(90.0),
///     demand: Resources::new(0.0125, 0.0159),
///     priority: Priority::new(0)?,
///     sched_class: SchedulingClass::BATCH,
/// };
/// assert_eq!(task.priority.group(), PriorityGroup::Gratis);
/// # Ok::<(), harmony_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Unique id within the trace.
    pub id: TaskId,
    /// The job this task belongs to.
    pub job: JobId,
    /// Submission time.
    pub arrival: SimTime,
    /// True execution time once placed on a machine. In the trace data
    /// model this is only known *after* the task finishes; run-time
    /// classifiers must not peek at it (see `harmony::classify`).
    pub duration: SimDuration,
    /// Maximum requested resources, normalized to the largest machine.
    pub demand: Resources,
    /// Priority level (0–11).
    pub priority: Priority,
    /// Latency-sensitivity class (0–3).
    pub sched_class: SchedulingClass,
}

impl Task {
    /// The moment the task would finish if it started executing at `start`.
    pub fn finish_if_started_at(&self, start: SimTime) -> SimTime {
        start + self.duration
    }

    /// Validates the task's invariants: non-negative finite demand that
    /// fits in a normalized machine, and a finite duration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidTask`] describing the violated
    /// invariant.
    pub fn validate(&self) -> Result<(), ModelError> {
        if !self.demand.is_valid() {
            return Err(ModelError::InvalidTask {
                id: self.id,
                reason: format!("demand {} is not a valid resource vector", self.demand),
            });
        }
        if !self.demand.fits_within(Resources::ONE) {
            return Err(ModelError::InvalidTask {
                id: self.id,
                reason: format!("demand {} exceeds the largest machine", self.demand),
            });
        }
        if !self.duration.as_secs().is_finite() {
            return Err(ModelError::InvalidTask {
                id: self.id,
                reason: "duration is not finite".to_owned(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_task() -> Task {
        Task {
            id: TaskId(7),
            job: JobId(3),
            arrival: SimTime::from_secs(12.0),
            duration: SimDuration::from_secs(100.0),
            demand: Resources::new(0.1, 0.2),
            priority: Priority::new(9).unwrap(),
            sched_class: SchedulingClass::new(2).unwrap(),
        }
    }

    #[test]
    fn priority_groups_cover_all_levels() {
        for level in 0..=11u8 {
            let p = Priority::new(level).unwrap();
            let expected = match level {
                0 | 1 => PriorityGroup::Gratis,
                2..=8 => PriorityGroup::Other,
                _ => PriorityGroup::Production,
            };
            assert_eq!(p.group(), expected, "level {level}");
        }
        assert!(Priority::new(12).is_err());
    }

    #[test]
    fn group_index_and_range_are_consistent() {
        for (i, g) in PriorityGroup::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
            let (lo, hi) = g.level_range();
            assert_eq!(PriorityGroup::of_level(lo), *g);
            assert_eq!(PriorityGroup::of_level(hi), *g);
        }
    }

    #[test]
    fn scheduling_class_bounds() {
        assert!(SchedulingClass::new(0).is_ok());
        assert!(SchedulingClass::new(3).is_ok());
        assert!(SchedulingClass::new(4).is_err());
        assert_eq!(SchedulingClass::BATCH.level(), 0);
        assert_eq!(SchedulingClass::SERVING.level(), 3);
    }

    #[test]
    fn task_finish_time() {
        let t = sample_task();
        assert_eq!(
            t.finish_if_started_at(SimTime::from_secs(50.0)),
            SimTime::from_secs(150.0)
        );
    }

    #[test]
    fn task_validation() {
        let mut t = sample_task();
        assert!(t.validate().is_ok());
        t.demand = Resources::new(1.5, 0.1);
        assert!(t.validate().is_err());
        t.demand = Resources::new(f64::NAN, 0.1);
        assert!(t.validate().is_err());
    }

    #[test]
    fn display_impls() {
        let t = sample_task();
        assert_eq!(format!("{}", t.id), "task#7");
        assert_eq!(format!("{}", t.job), "job#3");
        assert_eq!(format!("{}", t.priority), "p9");
        assert_eq!(format!("{}", t.sched_class), "sc2");
        assert_eq!(format!("{}", PriorityGroup::Gratis), "gratis");
    }

    #[test]
    fn serde_roundtrip() {
        let t = sample_task();
        let json = serde_json::to_string(&t).unwrap();
        let back: Task = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}

//! Machine power models and electricity prices.
//!
//! The paper estimates total energy usage of a physical machine "by a
//! linear function of resource utilization" (Eq. 7):
//!
//! ```text
//! P(u) = E_idle,m + Σ_{r ∈ R} α_{mr} · u_r
//! ```
//!
//! where `E_idle,m` is the idle draw of a type-`m` machine and `α_{mr}` the
//! slope for resource `r`. The energy *cost* at time `t` further multiplies
//! by the run-time electricity price `p_t`.

use serde::{Deserialize, Serialize};

use crate::{Resources, SimDuration, SimTime};

/// Linear utilization→power model for one machine type (Eq. 7).
///
/// # Examples
///
/// ```
/// use harmony_model::{PowerModel, Resources};
///
/// let model = PowerModel::new(100.0, Resources::new(150.0, 40.0));
/// assert_eq!(model.power_watts(Resources::ZERO), 100.0);
/// assert_eq!(model.power_watts(Resources::new(1.0, 0.5)), 270.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Idle draw `E_idle,m` in watts.
    pub idle_watts: f64,
    /// Per-resource slope `α_{mr}` in watts at 100% utilization of each
    /// dimension.
    pub alpha_watts: Resources,
}

impl PowerModel {
    /// Creates a linear power model from idle draw and per-resource slopes.
    pub fn new(idle_watts: f64, alpha_watts: Resources) -> Self {
        PowerModel { idle_watts, alpha_watts }
    }

    /// Instantaneous draw in watts at the given utilization vector
    /// (components in `[0, 1]`).
    pub fn power_watts(&self, utilization: Resources) -> f64 {
        self.idle_watts
            + self.alpha_watts.cpu * utilization.cpu
            + self.alpha_watts.mem * utilization.mem
    }

    /// Peak draw at 100% utilization of every resource.
    pub fn peak_watts(&self) -> f64 {
        self.power_watts(Resources::ONE)
    }

    /// Energy in watt-hours for holding `utilization` for `dt`.
    pub fn energy_wh(&self, utilization: Resources, dt: SimDuration) -> f64 {
        self.power_watts(utilization) * dt.as_hours()
    }

    /// Energy efficiency proxy used by the heterogeneity-oblivious baseline
    /// to order machines: normalized capacity delivered per peak watt.
    /// Larger is better.
    pub fn capacity_per_watt(&self, capacity: Resources) -> f64 {
        capacity.sum_components() / self.peak_watts().max(f64::MIN_POSITIVE)
    }
}

/// A run-time electricity price curve `p_t` in $/kWh.
///
/// The paper's formulation carries a time-varying price; its evaluation
/// does not publish the curve, so we support both a flat price and a
/// day/night time-of-use tariff.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EnergyPrice {
    /// A constant price in $/kWh.
    Flat(f64),
    /// A two-level tariff that repeats daily: `peak` applies between
    /// `peak_start_hour` (inclusive) and `peak_end_hour` (exclusive) of
    /// each simulated day, `off_peak` otherwise.
    TimeOfUse {
        /// Price during peak hours in $/kWh.
        peak: f64,
        /// Price outside peak hours in $/kWh.
        off_peak: f64,
        /// Hour of day (0–24) when the peak period starts.
        peak_start_hour: f64,
        /// Hour of day (0–24) when the peak period ends.
        peak_end_hour: f64,
    },
    /// An arbitrary per-hour price curve that repeats daily
    /// (`prices[h]` applies during hour `h`); e.g. a real day-ahead
    /// market curve.
    Hourly {
        /// 24 prices in $/kWh, one per hour of day.
        prices: Vec<f64>,
    },
}

impl EnergyPrice {
    /// Builds a daily-repeating hourly tariff from 24 prices.
    ///
    /// # Panics
    ///
    /// Panics unless exactly 24 non-negative finite prices are given.
    pub fn from_hourly(prices: Vec<f64>) -> Self {
        assert_eq!(prices.len(), 24, "hourly tariff needs 24 prices");
        assert!(
            prices.iter().all(|p| p.is_finite() && *p >= 0.0),
            "prices must be non-negative and finite"
        );
        EnergyPrice::Hourly { prices }
    }

    /// The price in effect at instant `t`, in $/kWh.
    pub fn price_at(&self, t: SimTime) -> f64 {
        match *self {
            EnergyPrice::Flat(p) => p,
            EnergyPrice::TimeOfUse { peak, off_peak, peak_start_hour, peak_end_hour } => {
                let hour = t.as_hours() % 24.0;
                if hour >= peak_start_hour && hour < peak_end_hour {
                    peak
                } else {
                    off_peak
                }
            }
            EnergyPrice::Hourly { ref prices } => {
                if prices.is_empty() {
                    return 0.0;
                }
                let hour = (t.as_hours() % 24.0).floor() as usize;
                prices[hour.min(prices.len() - 1)]
            }
        }
    }

    /// Cost in dollars of consuming `wh` watt-hours at instant `t`.
    pub fn cost_of_wh(&self, wh: f64, t: SimTime) -> f64 {
        self.price_at(t) * wh / 1000.0
    }
}

impl Default for EnergyPrice {
    /// A flat $0.10/kWh tariff.
    fn default() -> Self {
        EnergyPrice::Flat(0.10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_power_model() {
        let m = PowerModel::new(50.0, Resources::new(100.0, 20.0));
        assert_eq!(m.power_watts(Resources::ZERO), 50.0);
        assert_eq!(m.power_watts(Resources::new(0.5, 0.5)), 110.0);
        assert_eq!(m.peak_watts(), 170.0);
    }

    #[test]
    fn energy_integrates_over_time() {
        let m = PowerModel::new(100.0, Resources::ZERO);
        let wh = m.energy_wh(Resources::ZERO, SimDuration::from_hours(2.0));
        assert!((wh - 200.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_per_watt_prefers_efficient_machines() {
        let small_efficient = PowerModel::new(30.0, Resources::new(30.0, 10.0));
        let big_hungry = PowerModel::new(500.0, Resources::new(300.0, 100.0));
        let cap_small = Resources::new(0.1, 0.1);
        let cap_big = Resources::new(1.0, 1.0);
        assert!(
            small_efficient.capacity_per_watt(cap_small) > big_hungry.capacity_per_watt(cap_big) / 2.0
        );
    }

    #[test]
    fn flat_price_is_time_invariant() {
        let p = EnergyPrice::Flat(0.08);
        assert_eq!(p.price_at(SimTime::ZERO), 0.08);
        assert_eq!(p.price_at(SimTime::from_hours(37.0)), 0.08);
        // 1 kWh at $0.08/kWh costs $0.08.
        assert!((p.cost_of_wh(1000.0, SimTime::ZERO) - 0.08).abs() < 1e-12);
    }

    #[test]
    fn time_of_use_switches_daily() {
        let p = EnergyPrice::TimeOfUse {
            peak: 0.20,
            off_peak: 0.05,
            peak_start_hour: 8.0,
            peak_end_hour: 20.0,
        };
        assert_eq!(p.price_at(SimTime::from_hours(12.0)), 0.20);
        assert_eq!(p.price_at(SimTime::from_hours(2.0)), 0.05);
        assert_eq!(p.price_at(SimTime::from_hours(20.0)), 0.05);
        // Repeats the next day.
        assert_eq!(p.price_at(SimTime::from_hours(36.0)), 0.20);
    }

    #[test]
    fn default_price_is_flat() {
        assert_eq!(EnergyPrice::default(), EnergyPrice::Flat(0.10));
    }

    #[test]
    fn hourly_curve_repeats_daily() {
        let mut prices = vec![0.05; 24];
        prices[18] = 0.30; // evening spike
        let p = EnergyPrice::from_hourly(prices);
        assert_eq!(p.price_at(SimTime::from_hours(18.5)), 0.30);
        assert_eq!(p.price_at(SimTime::from_hours(42.5)), 0.30); // next day
        assert_eq!(p.price_at(SimTime::from_hours(3.0)), 0.05);
    }

    #[test]
    #[should_panic(expected = "24 prices")]
    fn hourly_curve_needs_24_entries() {
        let _ = EnergyPrice::from_hourly(vec![0.1; 23]);
    }
}

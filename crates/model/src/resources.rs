//! Fixed-dimension resource vectors.
//!
//! The paper's set of resource types `R` is `{CPU, memory}` for the Google
//! trace (Section III: "the dataset does not provide task size for other
//! resource types such as disk"), and all demands/capacities are normalized
//! to `[0, 1]` relative to the largest machine.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of resource dimensions (`|R|` in the paper): CPU and memory.
pub const NUM_RESOURCES: usize = 2;

/// A resource dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Normalized CPU (cores relative to the largest machine).
    Cpu,
    /// Normalized memory (bytes relative to the largest machine).
    Memory,
}

impl ResourceKind {
    /// All resource dimensions, in index order.
    pub const ALL: [ResourceKind; NUM_RESOURCES] = [ResourceKind::Cpu, ResourceKind::Memory];

    /// The dense index of this dimension inside a [`Resources`] vector.
    pub fn index(self) -> usize {
        match self {
            ResourceKind::Cpu => 0,
            ResourceKind::Memory => 1,
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Cpu => f.write_str("cpu"),
            ResourceKind::Memory => f.write_str("memory"),
        }
    }
}

/// A `(cpu, memory)` resource vector.
///
/// Used for task demands `s_i`, container sizes `c_n`, machine capacities
/// `C_m`, and utilizations. Components are plain `f64`s normalized against
/// the largest machine in the cluster, following the Google-trace
/// convention.
///
/// # Examples
///
/// ```
/// use harmony_model::Resources;
///
/// let demand = Resources::new(0.25, 0.125);
/// let capacity = Resources::new(0.5, 0.5);
/// assert!(demand.fits_within(capacity));
/// assert_eq!(demand + demand, Resources::new(0.5, 0.25));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Resources {
    /// Normalized CPU share.
    pub cpu: f64,
    /// Normalized memory share.
    pub mem: f64,
}

impl Resources {
    /// The zero vector.
    pub const ZERO: Resources = Resources { cpu: 0.0, mem: 0.0 };

    /// A full normalized unit of every resource (the largest machine).
    pub const ONE: Resources = Resources { cpu: 1.0, mem: 1.0 };

    /// Creates a resource vector from CPU and memory shares.
    pub fn new(cpu: f64, mem: f64) -> Self {
        Resources { cpu, mem }
    }

    /// Creates a vector with the same value in every dimension.
    pub fn splat(v: f64) -> Self {
        Resources { cpu: v, mem: v }
    }

    /// Returns the component for `kind`.
    pub fn get(self, kind: ResourceKind) -> f64 {
        self[kind.index()]
    }

    /// Sets the component for `kind`.
    pub fn set(&mut self, kind: ResourceKind, v: f64) {
        self[kind.index()] = v;
    }

    /// `true` if every component of `self` is `<=` the corresponding
    /// component of `capacity` (within a tiny tolerance for accumulated
    /// floating-point error).
    pub fn fits_within(self, capacity: Resources) -> bool {
        const EPS: f64 = 1e-9;
        self.cpu <= capacity.cpu + EPS && self.mem <= capacity.mem + EPS
    }

    /// Component-wise maximum.
    pub fn max(self, other: Resources) -> Resources {
        Resources::new(self.cpu.max(other.cpu), self.mem.max(other.mem))
    }

    /// Component-wise minimum.
    pub fn min(self, other: Resources) -> Resources {
        Resources::new(self.cpu.min(other.cpu), self.mem.min(other.mem))
    }

    /// The largest component — the *bottleneck* dimension used by the
    /// heterogeneity-oblivious baseline's 80%-utilization rule.
    pub fn max_component(self) -> f64 {
        self.cpu.max(self.mem)
    }

    /// The smallest component.
    pub fn min_component(self) -> f64 {
        self.cpu.min(self.mem)
    }

    /// Sum of components (used for effective-utilization arguments in
    /// Lemma 1, where effective utilization is `1/|R| · Σ_r u_r`).
    pub fn sum_components(self) -> f64 {
        self.cpu + self.mem
    }

    /// Component-wise division, mapping `x/0` to `0` — used to turn an
    /// absolute usage into a utilization against a capacity that may have a
    /// zero dimension.
    pub fn utilization_of(self, capacity: Resources) -> Resources {
        fn ratio(x: f64, c: f64) -> f64 {
            if c > 0.0 {
                x / c
            } else {
                0.0
            }
        }
        Resources::new(ratio(self.cpu, capacity.cpu), ratio(self.mem, capacity.mem))
    }

    /// `true` if every component is finite and `>= 0`.
    pub fn is_valid(self) -> bool {
        self.cpu.is_finite() && self.mem.is_finite() && self.cpu >= 0.0 && self.mem >= 0.0
    }

    /// Clamps every component to `[0, hi]`.
    pub fn clamp_components(self, hi: f64) -> Resources {
        Resources::new(self.cpu.clamp(0.0, hi), self.mem.clamp(0.0, hi))
    }

    /// Iterator over `(kind, value)` pairs.
    pub fn iter(self) -> impl Iterator<Item = (ResourceKind, f64)> {
        ResourceKind::ALL.into_iter().map(move |k| (k, self.get(k)))
    }
}

/// A resource demand or capacity extended with an accelerator
/// dimension (GPUs or other attached devices).
///
/// The accelerator axis is deliberately *not* folded into
/// [`Resources`]: the paper's formulation (and the whole CPU/memory
/// provisioning pipeline) is two-dimensional, and most machine types
/// carry no accelerators at all. Accelerator-aware paths (the pricing
/// subsystem's dollar objective, accelerator-bearing catalogs) carry
/// this wider vector explicitly, while every legacy path keeps the
/// compact two-dimensional form — and its serialized bytes — unchanged.
///
/// Units follow the machine-catalog convention: `accel` counts
/// normalized accelerator slots (one slot = one device on the
/// reference accelerator node), not shares of the largest machine.
///
/// # Examples
///
/// ```
/// use harmony_model::{AccelResources, Resources};
///
/// let demand = AccelResources::new(Resources::new(0.1, 0.1), 0.5);
/// let gpu_node = AccelResources::new(Resources::new(0.5, 0.75), 4.0);
/// let cpu_node = AccelResources::new(Resources::new(0.5, 0.75), 0.0);
/// assert!(demand.fits_within(gpu_node));
/// assert!(!demand.fits_within(cpu_node));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AccelResources {
    /// The CPU/memory part.
    pub compute: Resources,
    /// Normalized accelerator slots (0 for pure-CPU demands/machines).
    pub accel: f64,
}

impl AccelResources {
    /// The zero vector.
    pub const ZERO: AccelResources = AccelResources { compute: Resources::ZERO, accel: 0.0 };

    /// Creates an accelerator-extended resource vector.
    pub fn new(compute: Resources, accel: f64) -> Self {
        AccelResources { compute, accel }
    }

    /// A pure-compute vector with no accelerator demand.
    pub fn compute_only(compute: Resources) -> Self {
        AccelResources { compute, accel: 0.0 }
    }

    /// `true` if every dimension of `self` fits within `capacity`
    /// (same tolerance as [`Resources::fits_within`]).
    pub fn fits_within(self, capacity: AccelResources) -> bool {
        const EPS: f64 = 1e-9;
        self.compute.fits_within(capacity.compute) && self.accel <= capacity.accel + EPS
    }

    /// `true` if every dimension is finite and `>= 0`.
    pub fn is_valid(self) -> bool {
        self.compute.is_valid() && self.accel.is_finite() && self.accel >= 0.0
    }

    /// `true` if this vector actually uses the accelerator axis.
    pub fn has_accel(self) -> bool {
        self.accel > 0.0
    }
}

impl fmt::Display for AccelResources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(cpu={:.4}, mem={:.4}, accel={:.4})",
            self.compute.cpu, self.compute.mem, self.accel
        )
    }
}

impl Index<usize> for Resources {
    type Output = f64;

    // Out-of-range indexing panics by the `Index` contract, as for
    // slices; every in-tree caller iterates 0..NUM_RESOURCES.
    #[allow(clippy::panic)]
    fn index(&self, index: usize) -> &f64 {
        match index {
            0 => &self.cpu,
            1 => &self.mem,
            _ => panic!("resource index {index} out of range (NUM_RESOURCES = {NUM_RESOURCES})"),
        }
    }
}

impl IndexMut<usize> for Resources {
    // Same `Index` contract as above.
    #[allow(clippy::panic)]
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        match index {
            0 => &mut self.cpu,
            1 => &mut self.mem,
            _ => panic!("resource index {index} out of range (NUM_RESOURCES = {NUM_RESOURCES})"),
        }
    }
}

impl Add for Resources {
    type Output = Resources;

    fn add(self, rhs: Resources) -> Resources {
        Resources::new(self.cpu + rhs.cpu, self.mem + rhs.mem)
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        self.cpu += rhs.cpu;
        self.mem += rhs.mem;
    }
}

impl Sub for Resources {
    type Output = Resources;

    fn sub(self, rhs: Resources) -> Resources {
        Resources::new(self.cpu - rhs.cpu, self.mem - rhs.mem)
    }
}

impl SubAssign for Resources {
    fn sub_assign(&mut self, rhs: Resources) {
        self.cpu -= rhs.cpu;
        self.mem -= rhs.mem;
    }
}

impl Mul<f64> for Resources {
    type Output = Resources;

    fn mul(self, rhs: f64) -> Resources {
        Resources::new(self.cpu * rhs, self.mem * rhs)
    }
}

impl Div<f64> for Resources {
    type Output = Resources;

    fn div(self, rhs: f64) -> Resources {
        Resources::new(self.cpu / rhs, self.mem / rhs)
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, Add::add)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(cpu={:.4}, mem={:.4})", self.cpu, self.mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_within_is_componentwise() {
        let cap = Resources::new(0.5, 0.5);
        assert!(Resources::new(0.5, 0.5).fits_within(cap));
        assert!(Resources::new(0.0, 0.0).fits_within(cap));
        assert!(!Resources::new(0.6, 0.1).fits_within(cap));
        assert!(!Resources::new(0.1, 0.6).fits_within(cap));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let approx = |x: Resources, y: Resources| {
            assert!((x.cpu - y.cpu).abs() < 1e-12 && (x.mem - y.mem).abs() < 1e-12, "{x} != {y}");
        };
        let a = Resources::new(0.3, 0.2);
        let b = Resources::new(0.1, 0.05);
        approx(a + b - b, a);
        let mut c = a;
        c += b;
        c -= b;
        approx(c, a);
        approx((a * 2.0) / 2.0, a);
    }

    #[test]
    fn indexing_matches_kinds() {
        let r = Resources::new(0.7, 0.4);
        assert_eq!(r[ResourceKind::Cpu.index()], 0.7);
        assert_eq!(r[ResourceKind::Memory.index()], 0.4);
        assert_eq!(r.get(ResourceKind::Cpu), 0.7);
        let mut r2 = r;
        r2.set(ResourceKind::Memory, 0.9);
        assert_eq!(r2.mem, 0.9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let r = Resources::ZERO;
        let _ = r[2];
    }

    #[test]
    fn utilization_handles_zero_capacity() {
        let used = Resources::new(0.5, 0.25);
        let util = used.utilization_of(Resources::new(1.0, 0.0));
        assert_eq!(util, Resources::new(0.5, 0.0));
    }

    #[test]
    fn max_and_bottleneck() {
        let a = Resources::new(0.2, 0.8);
        let b = Resources::new(0.5, 0.1);
        assert_eq!(a.max(b), Resources::new(0.5, 0.8));
        assert_eq!(a.min(b), Resources::new(0.2, 0.1));
        assert_eq!(a.max_component(), 0.8);
        assert_eq!(b.max_component(), 0.5);
        assert_eq!(a.min_component(), 0.2);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Resources = (0..4).map(|i| Resources::splat(i as f64)).sum();
        assert_eq!(total, Resources::splat(6.0));
    }

    #[test]
    fn validity() {
        assert!(Resources::new(0.0, 0.0).is_valid());
        assert!(!Resources::new(-0.1, 0.0).is_valid());
        assert!(!Resources::new(f64::NAN, 0.0).is_valid());
        assert!(!Resources::new(0.0, f64::INFINITY).is_valid());
    }

    #[test]
    fn accel_resources_fit_and_validate() {
        let gpu_node = AccelResources::new(Resources::new(0.5, 0.75), 4.0);
        let cpu_node = AccelResources::compute_only(Resources::new(0.5, 0.75));
        let demand = AccelResources::new(Resources::new(0.1, 0.1), 1.0);
        assert!(demand.fits_within(gpu_node));
        assert!(!demand.fits_within(cpu_node));
        assert!(AccelResources::compute_only(demand.compute).fits_within(cpu_node));
        assert!(demand.has_accel());
        assert!(!cpu_node.has_accel());
        assert!(demand.is_valid());
        assert!(!AccelResources::new(Resources::new(0.1, 0.1), -1.0).is_valid());
        assert!(!AccelResources::new(Resources::new(f64::NAN, 0.1), 0.0).is_valid());
        assert_eq!(AccelResources::ZERO.accel, 0.0);
        let s = format!("{}", demand);
        assert!(s.contains("accel=1.0"), "{s}");
    }

    #[test]
    fn display_formats() {
        let s = format!("{}", Resources::new(0.5, 0.25));
        assert!(s.contains("cpu=0.5"), "{s}");
        assert_eq!(format!("{}", ResourceKind::Cpu), "cpu");
        assert_eq!(format!("{}", ResourceKind::Memory), "memory");
    }
}

//! A minimal splitmix64 PRNG shared by the client retry jitter and the
//! chaos harness.
//!
//! Both consumers need *reproducible* randomness — a retry schedule
//! that unit tests can assert byte-for-byte, and a fault plan that
//! replays identically for a given seed — so this mirrors the
//! dependency-free splitmix64 convention established by
//! `harmony-sim`'s fault injector rather than pulling in an external
//! generator.

/// A seedable, deterministic, platform-stable PRNG.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `usize` in `[0, n)`. Returns 0 for `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..256 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(rng.below(10) < 10);
        }
        assert_eq!(rng.below(0), 0);
    }
}

//! `harmonyctl` — CLI client for `harmonyd`.
//!
//! Sends one protocol verb per invocation and prints the daemon's JSON
//! response on stdout (also writing it to `--output` when given).
//! Exits non-zero when the daemon answers with an error.

use std::fs;
use std::process::ExitCode;

use harmony_model::Task;
use harmony_server::protocol::{Request, Response};
use harmony_server::{Client, RetryPolicy};
use harmony_trace::{Trace, TraceConfig, TraceGenerator};
use serde::Serialize;

const USAGE: &str = "\
harmonyctl — client for the harmonyd provisioning daemon

USAGE:
  harmonyctl --addr HOST:PORT [--output PATH] VERB [verb options]

VERBS:
  submit-observations      submit task observations for the next tick
      --file PATH            read tasks from a JSONL trace file
      --count N --seed S     or generate N synthetic tasks (default 100 / 2013)
  get-plan                 fetch the current integer provisioning plan
  get-forecast [--horizon N] per-class arrival forecasts
  status                   daemon status summary
  metrics                  live telemetry snapshot (counters, gauges, timings)
  tick                     force one control period now
  drain-events             drain accumulated degradation events
  snapshot                 force a checkpoint to the daemon's snapshot path
  shutdown                 graceful shutdown (final checkpoint included)

OPTIONS:
  --addr HOST:PORT         daemon address (required)
  --output PATH            also write the raw JSON response to PATH
  --retries N              retry connect failures and typed overloaded
                           responses up to N times with capped,
                           deterministically jittered exponential
                           backoff (default 0 = no retries)
  --retry-seed S           jitter seed for the retry schedule (default 0)
";

fn load_tasks(file: Option<&str>, count: usize, seed: u64) -> Result<Vec<Task>, String> {
    match file {
        Some(path) => {
            let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let trace = Trace::read_jsonl(&bytes[..])
                .map_err(|e| format!("cannot parse {path}: {e}"))?;
            Ok(trace.tasks().to_vec())
        }
        None => {
            let trace =
                TraceGenerator::new(TraceConfig::small().with_seed(seed)).generate();
            Ok(trace.tasks().iter().take(count).cloned().collect())
        }
    }
}

fn run() -> Result<bool, String> {
    let mut addr: Option<String> = None;
    let mut output: Option<String> = None;
    let mut verb: Option<String> = None;
    let mut file: Option<String> = None;
    let mut count: usize = 100;
    let mut seed: u64 = 2013;
    let mut horizon: Option<usize> = None;
    let mut retries: u32 = 0;
    let mut retry_seed: u64 = 0;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => addr = Some(grab("--addr")?),
            "--output" => output = Some(grab("--output")?),
            "--file" => file = Some(grab("--file")?),
            "--count" => {
                count = grab("--count")?.parse().map_err(|e| format!("--count: {e}"))?;
            }
            "--seed" => {
                seed = grab("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--horizon" => {
                horizon =
                    Some(grab("--horizon")?.parse().map_err(|e| format!("--horizon: {e}"))?);
            }
            "--retries" => {
                retries = grab("--retries")?.parse().map_err(|e| format!("--retries: {e}"))?;
            }
            "--retry-seed" => {
                retry_seed =
                    grab("--retry-seed")?.parse().map_err(|e| format!("--retry-seed: {e}"))?;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(true);
            }
            other if verb.is_none() && !other.starts_with("--") => {
                verb = Some(other.to_owned());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    let verb = verb.ok_or_else(|| "no verb given".to_owned())?;
    let request = match verb.as_str() {
        "submit-observations" => Request::SubmitObservations {
            tasks: load_tasks(file.as_deref(), count, seed)?,
        },
        "get-plan" => Request::GetPlan,
        "get-forecast" => Request::GetForecast { horizon },
        "status" => Request::Status,
        "metrics" => Request::Metrics,
        "tick" => Request::Tick,
        "drain-events" => Request::DrainEvents,
        "snapshot" => Request::Snapshot,
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown verb `{other}`")),
    };

    let addr = addr.ok_or_else(|| "--addr is required".to_owned())?;
    let policy = RetryPolicy {
        attempts: retries.saturating_add(1),
        seed: retry_seed,
        ..RetryPolicy::default()
    };
    let mut client = Client::connect_with_retry(&addr, &policy)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let response = client
        .request_with_retry(&request, &policy)
        .map_err(|e| format!("request failed: {e}"))?;

    let text = serde_json::to_string_pretty(&response.to_value())
        .map_err(|e| format!("render failed: {e}"))?;
    println!("{text}");
    if let Some(path) = output {
        let line = serde_json::to_string(&response.to_value())
            .map_err(|e| format!("render failed: {e}"))?;
        fs::write(&path, format!("{line}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(!matches!(response, Response::Error { .. }))
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("harmonyctl: {message}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

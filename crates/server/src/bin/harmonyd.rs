//! `harmonyd` — the HARMONY online provisioning daemon.
//!
//! Boots a classifier (from a trace file or the synthetic evaluation
//! workload), binds a TCP listener, and serves the newline-delimited
//! JSON protocol until a `shutdown` request arrives. With `--snapshot`
//! the controller state is checkpointed crash-safely; `--resume` picks
//! a previous run back up bit-identically.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::{Arc, RwLock};
use std::time::Duration;

use harmony::classify::{ClassifierConfig, TaskClassifier};
use harmony::{HarmonyConfig, OnlinePipeline};
use harmony_model::SimDuration;
use harmony_server::state::{self, CatalogSpec, ObjectiveSpec};
use harmony_server::{net, Service};

const USAGE: &str = "\
harmonyd — HARMONY online provisioning daemon

USAGE:
  harmonyd [OPTIONS]

OPTIONS:
  --listen ADDR            bind address (default 127.0.0.1:0; the bound
                           address is printed on stdout)
  --snapshot PATH          checkpoint controller state to PATH (atomic
                           tmp+rename) after every tick and on shutdown
  --resume PATH            restore from a checkpoint written by a prior
                           run; also becomes the snapshot path unless
                           --snapshot overrides it
  --trace PATH             fit the classifier from this trace file
  --format FMT             trace format: jsonl | google-csv (default jsonl)
  --synthetic-seed N       synthetic workload seed (default 2013)
  --synthetic-span-hours H synthetic workload span (default 24)
  --catalog NAME           machine catalog: table2 | table2-accel | google10
                           (default table2)
  --scale N                catalog population divisor (default 100)
  --objective NAME         provisioning objective: energy | dollars |
                           dollars-spot (default energy; the dollar
                           objectives price machine rental and SLO
                           violations, dollars-spot also bids on
                           discounted evictable spot pools)
  --price-seed N           price-book seed for the dollar objectives
                           (default 2013)
  --period-mins M          control period override in minutes
  --lp-backend NAME        simplex engine for CBS-RELAX: sparse | dense
                           (default sparse; dense is the reference
                           oracle, exact but slow on large instances)
  --tick-secs S            wall-clock seconds between automatic control
                           ticks; 0 = manual ticks only (default 0)
  --read-timeout-ms N      per-frame read deadline / connection idle
                           budget in ms (default 30000)
  --write-timeout-ms N     socket write deadline in ms (default 10000)
  --max-inflight N         admission-control high-water mark: expensive
                           verbs past N concurrent requests are shed
                           with a typed overloaded response (default 16)
  --max-connections N      hard cap on concurrent connections; excess
                           connections get a typed overloaded response
                           and are closed (default 64)
  --retry-after-ms N       retry hint attached to overloaded responses
                           (default 100)
  --watchdog-deadline-multiple N
                           a tick running longer than N control periods
                           is superseded by the watchdog (default 4)
  --chaos-tick-panic-every N
                           chaos testing: panic on every Nth tick
  --chaos-tick-stall-every N
                           chaos testing: stall on every Nth tick
  --chaos-tick-stall-ms N  chaos testing: stall duration in ms
                           (default 1000)
  --help                   show this help
";

struct Args {
    listen: String,
    snapshot: Option<PathBuf>,
    resume: Option<PathBuf>,
    trace: Option<String>,
    format: String,
    synthetic_seed: u64,
    synthetic_span_hours: f64,
    catalog: String,
    scale: usize,
    objective: String,
    price_seed: u64,
    period_mins: Option<f64>,
    lp_backend: harmony::SolverBackend,
    tick_secs: f64,
    read_timeout_ms: u64,
    write_timeout_ms: u64,
    max_inflight: usize,
    max_connections: usize,
    retry_after_ms: u64,
    watchdog_deadline_multiple: u32,
    chaos_tick_panic_every: Option<u64>,
    chaos_tick_stall_every: Option<u64>,
    chaos_tick_stall_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:0".to_owned(),
        snapshot: None,
        resume: None,
        trace: None,
        format: "jsonl".to_owned(),
        synthetic_seed: 2013,
        synthetic_span_hours: 24.0,
        catalog: "table2".to_owned(),
        scale: 100,
        objective: "energy".to_owned(),
        price_seed: 2013,
        period_mins: None,
        lp_backend: harmony::SolverBackend::default(),
        tick_secs: 0.0,
        read_timeout_ms: 30_000,
        write_timeout_ms: 10_000,
        max_inflight: 16,
        max_connections: net::MAX_CONNECTIONS,
        retry_after_ms: 100,
        watchdog_deadline_multiple: 4,
        chaos_tick_panic_every: None,
        chaos_tick_stall_every: None,
        chaos_tick_stall_ms: 1000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--listen" => args.listen = grab("--listen")?,
            "--snapshot" => args.snapshot = Some(PathBuf::from(grab("--snapshot")?)),
            "--resume" => args.resume = Some(PathBuf::from(grab("--resume")?)),
            "--trace" => args.trace = Some(grab("--trace")?),
            "--format" => args.format = grab("--format")?,
            "--synthetic-seed" => {
                args.synthetic_seed = grab("--synthetic-seed")?
                    .parse()
                    .map_err(|e| format!("--synthetic-seed: {e}"))?;
            }
            "--synthetic-span-hours" => {
                args.synthetic_span_hours = grab("--synthetic-span-hours")?
                    .parse()
                    .map_err(|e| format!("--synthetic-span-hours: {e}"))?;
            }
            "--catalog" => args.catalog = grab("--catalog")?,
            "--objective" => args.objective = grab("--objective")?,
            "--price-seed" => {
                args.price_seed = grab("--price-seed")?
                    .parse()
                    .map_err(|e| format!("--price-seed: {e}"))?;
            }
            "--scale" => {
                args.scale =
                    grab("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?;
            }
            "--period-mins" => {
                args.period_mins = Some(
                    grab("--period-mins")?
                        .parse()
                        .map_err(|e| format!("--period-mins: {e}"))?,
                );
            }
            "--lp-backend" => {
                args.lp_backend = grab("--lp-backend")?
                    .parse()
                    .map_err(|e| format!("--lp-backend: {e}"))?;
            }
            "--tick-secs" => {
                args.tick_secs =
                    grab("--tick-secs")?.parse().map_err(|e| format!("--tick-secs: {e}"))?;
            }
            "--read-timeout-ms" => {
                args.read_timeout_ms = grab("--read-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--read-timeout-ms: {e}"))?;
            }
            "--write-timeout-ms" => {
                args.write_timeout_ms = grab("--write-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--write-timeout-ms: {e}"))?;
            }
            "--max-inflight" => {
                args.max_inflight = grab("--max-inflight")?
                    .parse()
                    .map_err(|e| format!("--max-inflight: {e}"))?;
            }
            "--max-connections" => {
                args.max_connections = grab("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?;
            }
            "--retry-after-ms" => {
                args.retry_after_ms = grab("--retry-after-ms")?
                    .parse()
                    .map_err(|e| format!("--retry-after-ms: {e}"))?;
            }
            "--watchdog-deadline-multiple" => {
                args.watchdog_deadline_multiple = grab("--watchdog-deadline-multiple")?
                    .parse()
                    .map_err(|e| format!("--watchdog-deadline-multiple: {e}"))?;
            }
            "--chaos-tick-panic-every" => {
                args.chaos_tick_panic_every = Some(
                    grab("--chaos-tick-panic-every")?
                        .parse()
                        .map_err(|e| format!("--chaos-tick-panic-every: {e}"))?,
                );
            }
            "--chaos-tick-stall-every" => {
                args.chaos_tick_stall_every = Some(
                    grab("--chaos-tick-stall-every")?
                        .parse()
                        .map_err(|e| format!("--chaos-tick-stall-every: {e}"))?,
                );
            }
            "--chaos-tick-stall-ms" => {
                args.chaos_tick_stall_ms = grab("--chaos-tick-stall-ms")?
                    .parse()
                    .map_err(|e| format!("--chaos-tick-stall-ms: {e}"))?;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn build_service(args: &Args) -> Result<Service, String> {
    let snapshot = args.snapshot.clone().or_else(|| args.resume.clone());
    if let Some(resume) = &args.resume {
        let (checkpoint, recovery) = state::load_with_recovery(resume)
            .map_err(|e| format!("cannot load checkpoint {}: {e}", resume.display()))?;
        for event in &recovery {
            eprintln!("harmonyd: checkpoint recovery: {event}");
        }
        let service = Service::from_checkpoint(checkpoint, snapshot)?;
        eprintln!(
            "harmonyd: resumed from {} at tick {}",
            resume.display(),
            service.pipeline().ticks()
        );
        return Ok(service);
    }

    let span = SimDuration::from_secs(args.synthetic_span_hours * 3600.0);
    let (trace, source) = state::load_source(
        args.trace.as_deref(),
        &args.format,
        args.synthetic_seed,
        span,
        None,
    )?;
    let classifier_config = ClassifierConfig::default();
    let classifier = TaskClassifier::fit(trace.tasks(), &classifier_config)
        .map_err(|e| format!("classifier fit failed: {e}"))?;
    let catalog_spec = CatalogSpec { name: args.catalog.clone(), divisor: args.scale.max(1) };
    let catalog = catalog_spec.build()?;
    let objective_spec = match args.objective.as_str() {
        "energy" => ObjectiveSpec::Energy,
        "dollars" => ObjectiveSpec::Dollars { spot: false, seed: args.price_seed },
        "dollars-spot" => ObjectiveSpec::Dollars { spot: true, seed: args.price_seed },
        other => {
            return Err(format!(
                "unknown objective `{other}` (energy, dollars, or dollars-spot)"
            ))
        }
    };
    let groups: Vec<_> = classifier.classes().iter().map(|c| c.group).collect();
    let objective = objective_spec.build(&catalog, &groups);
    let mut config = HarmonyConfig::default();
    if let Some(mins) = args.period_mins {
        config.control_period = SimDuration::from_mins(mins);
    }
    config.lp_backend = args.lp_backend;
    let pipeline = OnlinePipeline::new(classifier, catalog, config, Default::default())
        .map_err(|e| format!("pipeline construction failed: {e}"))?
        .with_objective(objective);
    Ok(Service::new(
        pipeline,
        classifier_config,
        source,
        catalog_spec,
        objective_spec,
        snapshot,
    ))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let service = build_service(&args)?;
    let listener = TcpListener::bind(&args.listen)
        .map_err(|e| format!("cannot bind {}: {e}", args.listen))?;
    let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;
    // The e2e harness and smoke script parse this exact line.
    println!("harmonyd listening on {addr}");
    use std::io::Write;
    let _ = std::io::stdout().flush();

    let tick_period = (args.tick_secs > 0.0)
        .then(|| Duration::from_millis((args.tick_secs * 1000.0).max(1.0) as u64));
    let options = net::ServeOptions {
        tick_period,
        limits: net::ConnectionLimits {
            max_connections: args.max_connections.max(1),
            max_inflight: args.max_inflight.max(1),
            read_timeout: Duration::from_millis(args.read_timeout_ms.max(1)),
            write_timeout: Duration::from_millis(args.write_timeout_ms.max(1)),
            retry_after_ms: args.retry_after_ms,
        },
        watchdog: net::WatchdogPolicy {
            deadline_multiple: args.watchdog_deadline_multiple.max(1),
            ..net::WatchdogPolicy::default()
        },
        chaos: net::TickerChaos {
            panic_every: args.chaos_tick_panic_every,
            stall_every: args.chaos_tick_stall_every,
            stall: Duration::from_millis(args.chaos_tick_stall_ms),
        },
    };
    net::serve(listener, Arc::new(RwLock::new(service)), options)
        .map_err(|e| format!("server error: {e}"))?;
    eprintln!("harmonyd: shut down cleanly");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("harmonyd: {message}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

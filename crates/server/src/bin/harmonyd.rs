//! `harmonyd` — the HARMONY online provisioning daemon.
//!
//! Boots a classifier (from a trace file or the synthetic evaluation
//! workload), binds a TCP listener, and serves the newline-delimited
//! JSON protocol until a `shutdown` request arrives. With `--snapshot`
//! the controller state is checkpointed crash-safely; `--resume` picks
//! a previous run back up bit-identically.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::{Arc, RwLock};
use std::time::Duration;

use harmony::classify::{ClassifierConfig, TaskClassifier};
use harmony::{HarmonyConfig, OnlinePipeline};
use harmony_model::SimDuration;
use harmony_server::state::{self, CatalogSpec};
use harmony_server::{net, Service};

const USAGE: &str = "\
harmonyd — HARMONY online provisioning daemon

USAGE:
  harmonyd [OPTIONS]

OPTIONS:
  --listen ADDR            bind address (default 127.0.0.1:0; the bound
                           address is printed on stdout)
  --snapshot PATH          checkpoint controller state to PATH (atomic
                           tmp+rename) after every tick and on shutdown
  --resume PATH            restore from a checkpoint written by a prior
                           run; also becomes the snapshot path unless
                           --snapshot overrides it
  --trace PATH             fit the classifier from this trace file
  --format FMT             trace format: jsonl | google-csv (default jsonl)
  --synthetic-seed N       synthetic workload seed (default 2013)
  --synthetic-span-hours H synthetic workload span (default 24)
  --catalog NAME           machine catalog: table2 | google10 (default table2)
  --scale N                catalog population divisor (default 100)
  --period-mins M          control period override in minutes
  --tick-secs S            wall-clock seconds between automatic control
                           ticks; 0 = manual ticks only (default 0)
  --help                   show this help
";

struct Args {
    listen: String,
    snapshot: Option<PathBuf>,
    resume: Option<PathBuf>,
    trace: Option<String>,
    format: String,
    synthetic_seed: u64,
    synthetic_span_hours: f64,
    catalog: String,
    scale: usize,
    period_mins: Option<f64>,
    tick_secs: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:0".to_owned(),
        snapshot: None,
        resume: None,
        trace: None,
        format: "jsonl".to_owned(),
        synthetic_seed: 2013,
        synthetic_span_hours: 24.0,
        catalog: "table2".to_owned(),
        scale: 100,
        period_mins: None,
        tick_secs: 0.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--listen" => args.listen = grab("--listen")?,
            "--snapshot" => args.snapshot = Some(PathBuf::from(grab("--snapshot")?)),
            "--resume" => args.resume = Some(PathBuf::from(grab("--resume")?)),
            "--trace" => args.trace = Some(grab("--trace")?),
            "--format" => args.format = grab("--format")?,
            "--synthetic-seed" => {
                args.synthetic_seed = grab("--synthetic-seed")?
                    .parse()
                    .map_err(|e| format!("--synthetic-seed: {e}"))?;
            }
            "--synthetic-span-hours" => {
                args.synthetic_span_hours = grab("--synthetic-span-hours")?
                    .parse()
                    .map_err(|e| format!("--synthetic-span-hours: {e}"))?;
            }
            "--catalog" => args.catalog = grab("--catalog")?,
            "--scale" => {
                args.scale =
                    grab("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?;
            }
            "--period-mins" => {
                args.period_mins = Some(
                    grab("--period-mins")?
                        .parse()
                        .map_err(|e| format!("--period-mins: {e}"))?,
                );
            }
            "--tick-secs" => {
                args.tick_secs =
                    grab("--tick-secs")?.parse().map_err(|e| format!("--tick-secs: {e}"))?;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn build_service(args: &Args) -> Result<Service, String> {
    let snapshot = args.snapshot.clone().or_else(|| args.resume.clone());
    if let Some(resume) = &args.resume {
        let checkpoint = state::load(resume)
            .map_err(|e| format!("cannot load checkpoint {}: {e}", resume.display()))?;
        let service = Service::from_checkpoint(checkpoint, snapshot)?;
        eprintln!(
            "harmonyd: resumed from {} at tick {}",
            resume.display(),
            service.pipeline().ticks()
        );
        return Ok(service);
    }

    let span = SimDuration::from_secs(args.synthetic_span_hours * 3600.0);
    let (trace, source) = state::load_source(
        args.trace.as_deref(),
        &args.format,
        args.synthetic_seed,
        span,
        None,
    )?;
    let classifier_config = ClassifierConfig::default();
    let classifier = TaskClassifier::fit(trace.tasks(), &classifier_config)
        .map_err(|e| format!("classifier fit failed: {e}"))?;
    let catalog_spec = CatalogSpec { name: args.catalog.clone(), divisor: args.scale.max(1) };
    let catalog = catalog_spec.build()?;
    let mut config = HarmonyConfig::default();
    if let Some(mins) = args.period_mins {
        config.control_period = SimDuration::from_mins(mins);
    }
    let pipeline = OnlinePipeline::new(classifier, catalog, config, Default::default())
        .map_err(|e| format!("pipeline construction failed: {e}"))?;
    Ok(Service::new(pipeline, classifier_config, source, catalog_spec, snapshot))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let service = build_service(&args)?;
    let listener = TcpListener::bind(&args.listen)
        .map_err(|e| format!("cannot bind {}: {e}", args.listen))?;
    let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;
    // The e2e harness and smoke script parse this exact line.
    println!("harmonyd listening on {addr}");
    use std::io::Write;
    let _ = std::io::stdout().flush();

    let tick_period = (args.tick_secs > 0.0)
        .then(|| Duration::from_millis((args.tick_secs * 1000.0).max(1.0) as u64));
    net::serve(listener, Arc::new(RwLock::new(service)), tick_period)
        .map_err(|e| format!("server error: {e}"))?;
    eprintln!("harmonyd: shut down cleanly");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("harmonyd: {message}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

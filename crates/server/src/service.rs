//! Request handling for `harmonyd`.
//!
//! A [`Service`] owns the [`OnlinePipeline`] plus the daemon-level
//! state around it: the buffer of submitted-but-unconsumed
//! observations, lifetime counters, and checkpoint provenance. Network
//! and ticker threads share one `Service` behind a lock and call
//! [`Service::handle_deferred`] / [`Service::tick_once`].
//!
//! # Checkpoints never write under the service lock
//!
//! State-mutating verbs checkpoint automatically, but the file write
//! must not happen while the caller holds the service lock — a slow
//! disk would serialize every other request behind it. So mutating
//! verbs return a [`PendingSave`]: the checkpoint is *rendered* under
//! the lock (cheap, pure) and *committed* after the guard drops.
//! Commits are ordered by a [`SaveGate`] serial allocated under the
//! lock, so two saves racing outside it can never regress the file to
//! older state.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use harmony::classify::ClassifierConfig;
use harmony::OnlinePipeline;
use harmony_model::Task;

use crate::protocol::{MetricsBody, Request, Response, StatusBody};
use crate::state::{
    self, CatalogSpec, Checkpoint, ClassifierSource, ObjectiveSpec, CHECKPOINT_VERSION,
};

/// Orders checkpoint commits that happen outside the service lock.
///
/// Serials are allocated under the service lock (so they follow state
/// order); [`PendingSave::commit`] takes the `committed` mutex across
/// the file write so a stale pending save can never overwrite a newer
/// checkpoint that already landed on disk.
#[derive(Debug, Default)]
pub struct SaveGate {
    next: AtomicU64,
    committed: Mutex<u64>,
}

/// A checkpoint rendered under the service lock, waiting to be written
/// to disk after the lock is released.
#[derive(Debug)]
pub struct PendingSave {
    text: String,
    path: PathBuf,
    serial: u64,
    /// Explicit `snapshot` requests surface write failures in the
    /// response; autosaves only log them.
    required: bool,
    gate: Arc<SaveGate>,
}

impl PendingSave {
    /// Size of the encoded checkpoint (what [`PendingSave::commit`]
    /// will report as bytes written).
    pub fn bytes(&self) -> u64 {
        self.text.len() as u64
    }

    /// Writes the checkpoint unless a newer one already committed
    /// (`Ok(None)`). Call this *after* dropping the service guard.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the atomic write.
    pub fn commit(self) -> io::Result<Option<u64>> {
        let mut committed =
            self.gate.committed.lock().unwrap_or_else(PoisonError::into_inner);
        if self.serial <= *committed {
            return Ok(None);
        }
        let bytes = state::write_atomic(&self.text, &self.path)?;
        *committed = self.serial;
        Ok(Some(bytes))
    }

    /// Commits and folds the outcome into `response`: write failures
    /// replace the response for explicit snapshots and are logged (but
    /// do not fail the request) for autosaves.
    pub fn commit_into(self, response: Response) -> Response {
        let required = self.required;
        match self.commit() {
            Ok(_) => response,
            Err(e) if required => Response::internal(format!("snapshot failed: {e}")),
            Err(e) => {
                eprintln!("harmonyd: checkpoint failed: {e}");
                response
            }
        }
    }
}

/// The daemon's shared state: pipeline + observation buffer +
/// checkpoint provenance.
#[derive(Debug)]
pub struct Service {
    pipeline: OnlinePipeline,
    classifier_config: ClassifierConfig,
    source: ClassifierSource,
    catalog_spec: CatalogSpec,
    objective_spec: ObjectiveSpec,
    buffered: Vec<Task>,
    total_observations: u64,
    snapshot_path: Option<PathBuf>,
    save_gate: Arc<SaveGate>,
    // Watchdog bookkeeping: how often the background ticker had to be
    // restarted and why, surfaced via `status`. Deliberately not part
    // of the checkpoint — a restart wipes the slate.
    ticker_restarts: u64,
    ticker_last_error: Option<String>,
}

impl Service {
    /// Wraps a freshly built pipeline. `objective_spec` must be the
    /// recipe the pipeline's objective was built from, so checkpoints
    /// record how to rebuild it.
    pub fn new(
        pipeline: OnlinePipeline,
        classifier_config: ClassifierConfig,
        source: ClassifierSource,
        catalog_spec: CatalogSpec,
        objective_spec: ObjectiveSpec,
        snapshot_path: Option<PathBuf>,
    ) -> Self {
        Service {
            pipeline,
            classifier_config,
            source,
            catalog_spec,
            objective_spec,
            buffered: Vec::new(),
            total_observations: 0,
            snapshot_path,
            save_gate: Arc::new(SaveGate::default()),
            ticker_restarts: 0,
            ticker_last_error: None,
        }
    }

    /// Rebuilds a service from a checkpoint: refits the classifier from
    /// the recorded source (verifying the trace hash), rebuilds the
    /// catalog from its spec, and restores the pipeline state.
    ///
    /// # Errors
    ///
    /// Returns a message when the source cannot be reloaded, the
    /// catalog name is unknown, or the restored state is malformed.
    pub fn from_checkpoint(
        checkpoint: Checkpoint,
        snapshot_path: Option<PathBuf>,
    ) -> Result<Self, String> {
        let classifier = state::refit_classifier(&checkpoint.source, &checkpoint.classifier)?;
        let catalog = checkpoint.catalog.build()?;
        // The objective rebuilds from its recipe exactly like the
        // classifier: same catalog + same class groups + same seed give
        // the same price book and SLO curves.
        let groups: Vec<_> = classifier.classes().iter().map(|c| c.group).collect();
        let objective = checkpoint.objective.build(&catalog, &groups);
        let mut pipeline =
            OnlinePipeline::new(classifier, catalog, checkpoint.config, Default::default())
                .map_err(|e| format!("pipeline rebuild failed: {e}"))?
                .with_objective(objective);
        pipeline
            .restore(checkpoint.state)
            .map_err(|e| format!("state restore failed: {e}"))?;
        Ok(Service {
            pipeline,
            classifier_config: checkpoint.classifier,
            source: checkpoint.source,
            catalog_spec: checkpoint.catalog,
            objective_spec: checkpoint.objective,
            buffered: checkpoint.buffered,
            total_observations: checkpoint.total_observations,
            snapshot_path,
            save_gate: Arc::new(SaveGate::default()),
            ticker_restarts: 0,
            ticker_last_error: None,
        })
    }

    /// Records one watchdog-forced ticker restart for `status`.
    pub fn note_ticker_restart(&mut self, why: &str) {
        self.ticker_restarts += 1;
        self.ticker_last_error = Some(why.to_owned());
    }

    /// The underlying pipeline (read-only).
    pub fn pipeline(&self) -> &OnlinePipeline {
        &self.pipeline
    }

    /// Observations buffered for the next tick.
    pub fn buffered(&self) -> usize {
        self.buffered.len()
    }

    /// Where checkpoints go, if configured.
    pub fn snapshot_path(&self) -> Option<&PathBuf> {
        self.snapshot_path.as_ref()
    }

    /// Runs one control period over the buffered observations (they act
    /// as both the period's arrivals and its pending backlog), clears
    /// the buffer, and returns the actuated plan via the tick counter.
    pub fn tick_once(&mut self) -> u64 {
        let tasks = std::mem::take(&mut self.buffered);
        let _ = self.pipeline.tick(&tasks, &tasks);
        self.pipeline.ticks()
    }

    /// Snapshot of everything a restart needs.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            config: self.pipeline.config().clone(),
            classifier: self.classifier_config.clone(),
            source: self.source.clone(),
            catalog: self.catalog_spec.clone(),
            objective: self.objective_spec,
            state: self.pipeline.state(),
            buffered: self.buffered.clone(),
            total_observations: self.total_observations,
        }
    }

    /// Renders a checkpoint and allocates its commit serial. `Ok(None)`
    /// when no snapshot path is configured.
    fn make_pending(&self, required: bool) -> io::Result<Option<PendingSave>> {
        let Some(path) = self.snapshot_path.clone() else {
            return Ok(None);
        };
        let text = state::encode_checkpoint(&self.checkpoint())?;
        let serial = self.save_gate.next.fetch_add(1, Ordering::SeqCst) + 1;
        Ok(Some(PendingSave {
            text,
            path,
            serial,
            required,
            gate: Arc::clone(&self.save_gate),
        }))
    }

    /// Renders the current checkpoint for a deferred write (`None` when
    /// no snapshot path is configured, or — after logging — when the
    /// checkpoint fails to serialize). The caller commits it after
    /// releasing the service lock.
    pub fn pending_checkpoint(&self) -> Option<PendingSave> {
        match self.make_pending(false) {
            Ok(pending) => pending,
            Err(e) => {
                eprintln!("harmonyd: checkpoint failed: {e}");
                None
            }
        }
    }

    /// Renders and immediately commits a checkpoint (no-op returning
    /// `Ok(None)` when no snapshot path is configured, or when a newer
    /// checkpoint already committed). Prefer
    /// [`Service::pending_checkpoint`] when holding the service lock —
    /// this method writes the file inline.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the atomic save.
    pub fn save_checkpoint(&self) -> io::Result<Option<u64>> {
        match self.make_pending(false)? {
            Some(pending) => pending.commit(),
            None => Ok(None),
        }
    }

    /// Builds the `status` response body. Public (rather than routed
    /// through [`Service::handle`]) so the network layer can answer
    /// `status` under a *read* lock even while sheddable verbs queue
    /// for the write lock.
    pub fn status_body(&self) -> StatusBody {
        StatusBody {
            ticks: self.pipeline.ticks(),
            now_secs: self.pipeline.now().as_secs(),
            errors: self.pipeline.error_count(),
            buffered: self.buffered.len(),
            total_observations: self.total_observations,
            n_classes: self.pipeline.n_classes(),
            machine_types: self.pipeline.catalog().len(),
            total_machines: self.pipeline.catalog().total_machines(),
            pending_events: self.pipeline.pending_degradations().len(),
            has_plan: self.pipeline.last_plan().is_some(),
            snapshot_path: self
                .snapshot_path
                .as_ref()
                .map(|p| p.display().to_string()),
            ticker_restarts: self.ticker_restarts,
            ticker_last_error: self.ticker_last_error.clone(),
        }
    }

    /// Executes one request without touching the filesystem. When the
    /// verb checkpoints (`submit-observations`, `tick`, `snapshot`),
    /// the rendered checkpoint comes back as a [`PendingSave`] the
    /// caller must commit *after* releasing the service lock. `Shutdown`
    /// returns [`Response::ShuttingDown`]; actually stopping the daemon
    /// is the caller's job.
    pub fn handle_deferred(&mut self, request: Request) -> (Response, Option<PendingSave>) {
        match request {
            Request::SubmitObservations { tasks } => {
                self.total_observations += tasks.len() as u64;
                self.buffered.extend(tasks);
                let response = Response::Submitted {
                    buffered: self.buffered.len(),
                    total: self.total_observations,
                };
                let save = self.pending_checkpoint();
                (response, save)
            }
            Request::GetPlan => (
                Response::Plan {
                    tick: self.pipeline.ticks(),
                    plan: self.pipeline.last_plan().cloned(),
                },
                None,
            ),
            Request::GetForecast { horizon } => {
                let horizon = horizon.unwrap_or(self.pipeline.config().horizon).max(1);
                (
                    Response::Forecast {
                        horizon,
                        classes: self.pipeline.forecast_tiered(horizon),
                    },
                    None,
                )
            }
            Request::Status => (Response::Status(self.status_body()), None),
            // The network layer answers `metrics` lock-free before it
            // ever takes the service lock; routing it here would drag a
            // telemetry snapshot under the write lock for no reason.
            Request::Metrics => (
                Response::internal("metrics is served lock-free by the network layer"),
                None,
            ),
            Request::Tick => {
                let tick = self.tick_once();
                let save = self.pending_checkpoint();
                let response = match self.pipeline.last_plan().cloned() {
                    Some(plan) => Response::Ticked { tick, plan },
                    None => Response::internal("tick produced no plan"),
                };
                (response, save)
            }
            Request::DrainEvents => (
                Response::Events {
                    events: self.pipeline.take_degradations(),
                },
                None,
            ),
            Request::Snapshot => match self.make_pending(true) {
                Ok(Some(save)) => {
                    let response = Response::Snapshotted {
                        path: self
                            .snapshot_path
                            .as_ref()
                            .map(|p| p.display().to_string())
                            .unwrap_or_default(),
                        bytes: save.bytes(),
                    };
                    (response, Some(save))
                }
                Ok(None) => (
                    Response::bad_request(
                        "no snapshot path configured (start harmonyd with --snapshot)",
                    ),
                    None,
                ),
                Err(e) => (Response::internal(format!("snapshot failed: {e}")), None),
            },
            Request::Shutdown => (Response::ShuttingDown, None),
        }
    }

    /// [`Service::handle_deferred`] plus an immediate commit of any
    /// pending checkpoint — the convenience entry point for tests and
    /// single-threaded callers that do not hold a lock.
    pub fn handle(&mut self, request: Request) -> Response {
        if matches!(request, Request::Metrics) {
            return Response::Metrics(MetricsBody::from(
                &harmony_telemetry::global().snapshot(),
            ));
        }
        let (response, save) = self.handle_deferred(request);
        match save {
            Some(save) => save.commit_into(response),
            None => response,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony::classify::{ClassifierConfig, TaskClassifier};
    use harmony::HarmonyConfig;
    use harmony_model::{MachineCatalog, SimDuration};

    fn test_service(snapshot: Option<PathBuf>) -> (Service, Vec<Task>) {
        // Build from the same source description a resume would refit
        // from, so checkpoint round-trips are exact.
        let span = SimDuration::from_hours(2.0);
        let (trace, source) =
            state::load_source(None, "jsonl", 33, span, None).unwrap();
        let classifier_config = ClassifierConfig {
            k_per_group: Some([2, 2, 2]),
            ..ClassifierConfig::default()
        };
        let classifier = TaskClassifier::fit(trace.tasks(), &classifier_config).unwrap();
        let config = HarmonyConfig {
            horizon: 2,
            control_period: SimDuration::from_mins(10.0),
            ..HarmonyConfig::default()
        };
        let pipeline = OnlinePipeline::new(
            classifier,
            MachineCatalog::table2().scaled(100),
            config,
            Default::default(),
        )
        .unwrap();
        let spec = CatalogSpec { name: "table2".to_owned(), divisor: 100 };
        let tasks: Vec<Task> = trace.tasks().iter().take(200).cloned().collect();
        let service = Service::new(
            pipeline,
            classifier_config,
            source,
            spec,
            ObjectiveSpec::Energy,
            snapshot,
        );
        (service, tasks)
    }

    #[test]
    fn submit_then_tick_produces_a_plan() {
        let (mut service, tasks) = test_service(None);
        let n = tasks.len();
        let response = service.handle(Request::SubmitObservations { tasks });
        assert!(
            matches!(response, Response::Submitted { buffered, total } if buffered == n && total == n as u64)
        );
        let response = service.handle(Request::Tick);
        match response {
            Response::Ticked { tick, plan } => {
                assert_eq!(tick, 1);
                assert!(plan.machines.iter().sum::<usize>() > 0);
            }
            other => panic!("expected Ticked, got {other:?}"),
        }
        assert_eq!(service.buffered(), 0, "tick consumes the buffer");
        let response = service.handle(Request::GetPlan);
        assert!(matches!(response, Response::Plan { tick: 1, plan: Some(_) }));
    }

    #[test]
    fn status_reflects_state() {
        let (mut service, tasks) = test_service(None);
        let n = tasks.len();
        service.handle(Request::SubmitObservations { tasks });
        match service.handle(Request::Status) {
            Response::Status(body) => {
                assert_eq!(body.ticks, 0);
                assert_eq!(body.buffered, n);
                assert_eq!(body.total_observations, n as u64);
                assert!(!body.has_plan);
                assert!(body.snapshot_path.is_none());
                assert_eq!(body.ticker_restarts, 0);
                assert!(body.ticker_last_error.is_none());
            }
            other => panic!("expected Status, got {other:?}"),
        }
    }

    #[test]
    fn ticker_restarts_surface_in_status() {
        let (mut service, _) = test_service(None);
        service.note_ticker_restart("chaos: injected tick panic #1");
        service.note_ticker_restart("tick exceeded deadline");
        match service.handle(Request::Status) {
            Response::Status(body) => {
                assert_eq!(body.ticker_restarts, 2);
                assert_eq!(body.ticker_last_error.as_deref(), Some("tick exceeded deadline"));
            }
            other => panic!("expected Status, got {other:?}"),
        }
    }

    #[test]
    fn metrics_returns_live_counters() {
        let (mut service, tasks) = test_service(None);
        service.handle(Request::SubmitObservations { tasks });
        service.handle(Request::Tick);
        match service.handle(Request::Metrics) {
            Response::Metrics(body) => {
                // The tick above drove the pipeline, so its counters and
                // stage timings must be visible in the snapshot (≥, not
                // ==: the registry is shared with parallel tests).
                assert!(body.counters.get("pipeline.ticks").copied().unwrap_or(0) >= 1);
                assert!(body
                    .histograms
                    .iter()
                    .any(|h| h.name == "pipeline.period_seconds" && h.count >= 1));
                assert!(body
                    .histograms
                    .iter()
                    .any(|h| h.name == "pipeline.lp_seconds" && h.count >= 1));
            }
            other => panic!("expected Metrics, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_without_path_is_an_error() {
        let (mut service, _) = test_service(None);
        assert!(matches!(service.handle(Request::Snapshot), Response::Error { .. }));
    }

    fn dollar_service(snapshot: Option<PathBuf>) -> (Service, Vec<Task>) {
        let span = SimDuration::from_hours(2.0);
        let (trace, source) = state::load_source(None, "jsonl", 33, span, None).unwrap();
        let classifier_config = ClassifierConfig {
            k_per_group: Some([2, 2, 2]),
            ..ClassifierConfig::default()
        };
        let classifier = TaskClassifier::fit(trace.tasks(), &classifier_config).unwrap();
        let config = HarmonyConfig {
            horizon: 2,
            control_period: SimDuration::from_mins(10.0),
            ..HarmonyConfig::default()
        };
        let spec = CatalogSpec { name: "table2-accel".to_owned(), divisor: 100 };
        let catalog = spec.build().unwrap();
        let objective_spec = ObjectiveSpec::Dollars { spot: true, seed: 2013 };
        let groups: Vec<_> = classifier.classes().iter().map(|c| c.group).collect();
        let objective = objective_spec.build(&catalog, &groups);
        let pipeline = OnlinePipeline::new(classifier, catalog, config, Default::default())
            .unwrap()
            .with_objective(objective);
        let tasks: Vec<Task> = trace.tasks().iter().take(200).cloned().collect();
        let service =
            Service::new(pipeline, classifier_config, source, spec, objective_spec, snapshot);
        (service, tasks)
    }

    #[test]
    fn dollar_checkpoint_resumes_spend_and_objective() {
        let dir = std::env::temp_dir()
            .join(format!("harmonyd-service-dollar-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("svc.json");

        let (mut service, tasks) = dollar_service(Some(path.clone()));
        for chunk in tasks.chunks(100) {
            service.handle(Request::SubmitObservations { tasks: chunk.to_vec() });
            service.handle(Request::Tick);
        }
        let spent = service.pipeline().cost_dollars();
        assert!(spent > 0.0, "dollar ticks must accrue rental spend");
        assert!(matches!(service.handle(Request::Snapshot), Response::Snapshotted { .. }));
        drop(service);

        let checkpoint = state::load(&path).unwrap();
        assert_eq!(checkpoint.objective, ObjectiveSpec::Dollars { spot: true, seed: 2013 });
        let resumed = Service::from_checkpoint(checkpoint, Some(path)).unwrap();
        assert_eq!(
            resumed.pipeline().cost_dollars(),
            spent,
            "resume must restore the cumulative spend exactly"
        );
        assert!(
            matches!(resumed.pipeline().objective(), harmony::CbsObjective::Dollars(_)),
            "resume must rebuild the dollar objective from its recipe"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_restores_identical_plan_sequence() {
        let dir = std::env::temp_dir()
            .join(format!("harmonyd-service-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("svc.json");

        let (mut uninterrupted, tasks) = test_service(None);
        let (mut original, _) = test_service(Some(path.clone()));
        let chunks: Vec<Vec<Task>> = tasks.chunks(40).map(<[Task]>::to_vec).collect();

        let mut expected = Vec::new();
        for chunk in &chunks {
            uninterrupted.handle(Request::SubmitObservations { tasks: chunk.clone() });
            uninterrupted.handle(Request::Tick);
            expected.push(uninterrupted.pipeline().last_plan().cloned());
        }

        let mut actual = Vec::new();
        for chunk in &chunks[..2] {
            original.handle(Request::SubmitObservations { tasks: chunk.clone() });
            original.handle(Request::Tick);
            actual.push(original.pipeline().last_plan().cloned());
        }
        assert!(matches!(original.handle(Request::Snapshot), Response::Snapshotted { .. }));
        drop(original);

        let checkpoint = state::load(&path).unwrap();
        let mut resumed = Service::from_checkpoint(checkpoint, Some(path.clone())).unwrap();
        assert_eq!(resumed.pipeline().ticks(), 2);
        for chunk in &chunks[2..] {
            resumed.handle(Request::SubmitObservations { tasks: chunk.clone() });
            resumed.handle(Request::Tick);
            actual.push(resumed.pipeline().last_plan().cloned());
        }
        assert_eq!(actual, expected, "resume must reproduce the plan sequence");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! `harmony-server` — the HARMONY online provisioning service.
//!
//! This crate turns the batch [`harmony`] pipeline into a long-running
//! daemon. Two binaries ship with it:
//!
//! * **`harmonyd`** — listens on TCP, speaks newline-delimited JSON
//!   ([`protocol`]), buffers submitted task observations, runs the
//!   monitor → forecast → size → CBS-RELAX → round control loop each
//!   period (manually via `tick` or on a background ticker), and
//!   checkpoints its controller state crash-safely ([`state`]).
//! * **`harmonyctl`** — a thin CLI over the [`client`] library.
//!
//! The split mirrors the paper's deployment story: Harmony is an online
//! controller that keeps re-planning as arrivals stream in, so the
//! reproduction needs a service form of the pipeline, not just batch
//! replays. Everything here is std-only (thread-per-connection, no
//! async runtime) to honor the repo's no-new-dependencies rule.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod chaos;
pub mod client;
pub mod net;
pub mod protocol;
pub mod rng;
pub mod service;
pub mod state;

pub use client::{Client, RetryPolicy};
pub use protocol::{
    ErrorKind, HistogramBody, MetricsBody, Request, Response, StatusBody, MAX_LINE_BYTES,
};
pub use service::Service;
pub use state::{Checkpoint, CatalogSpec, ClassifierSource, RecoveryEvent, CHECKPOINT_VERSION};

//! The `harmonyd` wire protocol: newline-delimited JSON over TCP.
//!
//! Each request is one JSON object on one line, tagged by a `verb`
//! field; each response is one JSON object on one line with an `ok`
//! boolean — `{"ok":false,"error":"..."}` on failure, or
//! `{"ok":true,"type":"<tag>",...}` with a type-specific body on
//! success. Lines are capped at [`MAX_LINE_BYTES`]; an over-long line is
//! a protocol error and closes the connection.
//!
//! The grammar (see DESIGN.md §8 for the prose version):
//!
//! ```text
//! request  = submit | get-plan | get-forecast | status | metrics
//!          | tick | drain-events | snapshot | shutdown
//! submit   = {"verb":"submit-observations","tasks":[Task...]}
//! get-plan = {"verb":"get-plan"}
//! forecast = {"verb":"get-forecast","horizon":N?}     (null/absent → config horizon)
//! status   = {"verb":"status"}
//! metrics  = {"verb":"metrics"}
//! tick     = {"verb":"tick"}
//! drain    = {"verb":"drain-events"}
//! snapshot = {"verb":"snapshot"}
//! shutdown = {"verb":"shutdown"}
//! ```
//!
//! Checkpoints and the wire protocol share one schema: the payload
//! types ([`harmony_model::Task`], [`harmony::rounding::IntegerPlan`],
//! [`harmony_sim::DegradationEvent`], [`harmony::monitor::ClassForecast`])
//! serialize identically in both.

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};
use std::time::Instant;

use harmony::monitor::ClassForecast;
use harmony::rounding::IntegerPlan;
use harmony_model::Task;
use harmony_sim::DegradationEvent;
use serde::value::{DeError, Value};
use serde::{Deserialize, Serialize};

/// Hard cap on one protocol line (request or response), in bytes.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Feed tasks observed since the last submission; they buffer until
    /// the next control tick consumes them as arrivals + backlog.
    SubmitObservations {
        /// The observed tasks.
        tasks: Vec<Task>,
    },
    /// The most recent provisioning plan.
    GetPlan,
    /// A per-class arrival forecast over `horizon` periods (`None` →
    /// the configured MPC horizon).
    GetForecast {
        /// Number of control periods to forecast.
        horizon: Option<usize>,
    },
    /// Daemon status counters.
    Status,
    /// A snapshot of the live telemetry registry (counters, gauges,
    /// stage-timing histograms).
    Metrics,
    /// Run one control tick now (also available on the daemon's
    /// background ticker).
    Tick,
    /// Drain accumulated degradation events.
    DrainEvents,
    /// Write a checkpoint now.
    Snapshot,
    /// Graceful shutdown: stop accepting, finish in-flight work, write a
    /// final checkpoint.
    Shutdown,
}

impl Request {
    /// The wire verb for this request.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::SubmitObservations { .. } => "submit-observations",
            Request::GetPlan => "get-plan",
            Request::GetForecast { .. } => "get-forecast",
            Request::Status => "status",
            Request::Metrics => "metrics",
            Request::Tick => "tick",
            Request::DrainEvents => "drain-events",
            Request::Snapshot => "snapshot",
            Request::Shutdown => "shutdown",
        }
    }
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("verb".to_owned(), self.verb().to_value());
        match self {
            Request::SubmitObservations { tasks } => {
                map.insert("tasks".to_owned(), tasks.to_value());
            }
            Request::GetForecast { horizon } => {
                map.insert("horizon".to_owned(), horizon.to_value());
            }
            _ => {}
        }
        Value::Object(map)
    }
}

impl Deserialize for Request {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let verb = String::from_value(v.field("verb")?)?;
        match verb.as_str() {
            "submit-observations" => Ok(Request::SubmitObservations {
                tasks: Vec::from_value(v.field("tasks")?)?,
            }),
            "get-plan" => Ok(Request::GetPlan),
            "get-forecast" => Ok(Request::GetForecast {
                horizon: match v.get("horizon") {
                    Some(h) => Option::from_value(h)?,
                    None => None,
                },
            }),
            "status" => Ok(Request::Status),
            "metrics" => Ok(Request::Metrics),
            "tick" => Ok(Request::Tick),
            "drain-events" => Ok(Request::DrainEvents),
            "snapshot" => Ok(Request::Snapshot),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(DeError::new(format!("unknown verb `{other}`"))),
        }
    }
}

/// Daemon status counters (the `status` response body).
#[derive(Debug, Clone, PartialEq)]
pub struct StatusBody {
    /// Control ticks completed.
    pub ticks: u64,
    /// The logical clock in seconds (ticks × control period).
    pub now_secs: f64,
    /// Ticks that degraded instead of completing the full pipeline.
    pub errors: usize,
    /// Observations buffered for the next tick.
    pub buffered: usize,
    /// Observations accepted over the daemon's lifetime.
    pub total_observations: u64,
    /// Task classes in the fitted classifier.
    pub n_classes: usize,
    /// Machine types in the catalog.
    pub machine_types: usize,
    /// Total machine population.
    pub total_machines: usize,
    /// Degradation events awaiting `drain-events`.
    pub pending_events: usize,
    /// Whether a provisioning plan has been computed yet.
    pub has_plan: bool,
    /// Checkpoint path, when checkpointing is enabled.
    pub snapshot_path: Option<String>,
    /// Background-ticker restarts forced by the watchdog.
    pub ticker_restarts: u64,
    /// Why the ticker was last restarted, if it ever was.
    pub ticker_last_error: Option<String>,
}

impl Serialize for StatusBody {
    fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("ticks".to_owned(), self.ticks.to_value());
        map.insert("now_secs".to_owned(), self.now_secs.to_value());
        map.insert("errors".to_owned(), self.errors.to_value());
        map.insert("buffered".to_owned(), self.buffered.to_value());
        map.insert("total_observations".to_owned(), self.total_observations.to_value());
        map.insert("n_classes".to_owned(), self.n_classes.to_value());
        map.insert("machine_types".to_owned(), self.machine_types.to_value());
        map.insert("total_machines".to_owned(), self.total_machines.to_value());
        map.insert("pending_events".to_owned(), self.pending_events.to_value());
        map.insert("has_plan".to_owned(), self.has_plan.to_value());
        map.insert("snapshot_path".to_owned(), self.snapshot_path.to_value());
        map.insert("ticker_restarts".to_owned(), self.ticker_restarts.to_value());
        map.insert("ticker_last_error".to_owned(), self.ticker_last_error.to_value());
        Value::Object(map)
    }
}

impl Deserialize for StatusBody {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(StatusBody {
            ticks: u64::from_value(v.field("ticks")?)?,
            now_secs: f64::from_value(v.field("now_secs")?)?,
            errors: usize::from_value(v.field("errors")?)?,
            buffered: usize::from_value(v.field("buffered")?)?,
            total_observations: u64::from_value(v.field("total_observations")?)?,
            n_classes: usize::from_value(v.field("n_classes")?)?,
            machine_types: usize::from_value(v.field("machine_types")?)?,
            total_machines: usize::from_value(v.field("total_machines")?)?,
            pending_events: usize::from_value(v.field("pending_events")?)?,
            has_plan: bool::from_value(v.field("has_plan")?)?,
            snapshot_path: Option::from_value(v.field("snapshot_path")?)?,
            // Absent in pre-watchdog daemons' status bodies.
            ticker_restarts: match v.field("ticker_restarts") {
                Ok(field) => u64::from_value(field)?,
                Err(_) => 0,
            },
            ticker_last_error: match v.field("ticker_last_error") {
                Ok(field) => Option::from_value(field)?,
                Err(_) => None,
            },
        })
    }
}

/// One histogram's wire form: raw bucket state plus derived summary
/// stats (precomputed so dashboards need no bucket math).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramBody {
    /// Metric name.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Estimated median (bucket upper bound).
    pub p50: f64,
    /// Estimated 99th percentile (bucket upper bound).
    pub p99: f64,
    /// Ascending bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; the last entry is the overflow bucket.
    pub buckets: Vec<u64>,
}

impl From<&harmony_telemetry::HistogramSnapshot> for HistogramBody {
    fn from(h: &harmony_telemetry::HistogramSnapshot) -> Self {
        HistogramBody {
            name: h.name.clone(),
            count: h.count,
            sum: h.sum,
            mean: h.mean(),
            p50: h.quantile(0.5),
            p99: h.quantile(0.99),
            bounds: h.bounds.clone(),
            buckets: h.buckets.clone(),
        }
    }
}

impl Serialize for HistogramBody {
    fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("name".to_owned(), self.name.to_value());
        map.insert("count".to_owned(), self.count.to_value());
        map.insert("sum".to_owned(), self.sum.to_value());
        map.insert("mean".to_owned(), self.mean.to_value());
        map.insert("p50".to_owned(), self.p50.to_value());
        map.insert("p99".to_owned(), self.p99.to_value());
        map.insert("bounds".to_owned(), self.bounds.to_value());
        map.insert("buckets".to_owned(), self.buckets.to_value());
        Value::Object(map)
    }
}

impl Deserialize for HistogramBody {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(HistogramBody {
            name: String::from_value(v.field("name")?)?,
            count: u64::from_value(v.field("count")?)?,
            sum: f64::from_value(v.field("sum")?)?,
            mean: f64::from_value(v.field("mean")?)?,
            p50: f64::from_value(v.field("p50")?)?,
            p99: f64::from_value(v.field("p99")?)?,
            bounds: Vec::from_value(v.field("bounds")?)?,
            buckets: Vec::from_value(v.field("buckets")?)?,
        })
    }
}

/// The `metrics` response body: a point-in-time view of the daemon's
/// telemetry registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsBody {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states, ordered by name.
    pub histograms: Vec<HistogramBody>,
}

impl From<&harmony_telemetry::Snapshot> for MetricsBody {
    fn from(snap: &harmony_telemetry::Snapshot) -> Self {
        MetricsBody {
            counters: snap.counters.clone(),
            gauges: snap.gauges.clone(),
            histograms: snap.histograms.iter().map(HistogramBody::from).collect(),
        }
    }
}

impl Serialize for MetricsBody {
    fn to_value(&self) -> Value {
        let counters: BTreeMap<String, Value> =
            self.counters.iter().map(|(k, n)| (k.clone(), n.to_value())).collect();
        let gauges: BTreeMap<String, Value> =
            self.gauges.iter().map(|(k, g)| (k.clone(), g.to_value())).collect();
        let mut map = BTreeMap::new();
        map.insert("counters".to_owned(), Value::Object(counters));
        map.insert("gauges".to_owned(), Value::Object(gauges));
        map.insert("histograms".to_owned(), self.histograms.to_value());
        Value::Object(map)
    }
}

impl Deserialize for MetricsBody {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let object = |field: &str| -> Result<Vec<(String, Value)>, DeError> {
            match v.field(field)? {
                Value::Object(map) => {
                    Ok(map.iter().map(|(k, val)| (k.clone(), val.clone())).collect())
                }
                _ => Err(DeError::new(format!("`{field}` must be an object"))),
            }
        };
        let mut counters = BTreeMap::new();
        for (k, val) in object("counters")? {
            counters.insert(k, u64::from_value(&val)?);
        }
        let mut gauges = BTreeMap::new();
        for (k, val) in object("gauges")? {
            gauges.insert(k, f64::from_value(&val)?);
        }
        Ok(MetricsBody {
            counters,
            gauges,
            histograms: Vec::from_value(v.field("histograms")?)?,
        })
    }
}

/// Why a request failed — carried on the wire so clients can react
/// mechanically (retry after a shed, reconnect after a timeout) instead
/// of parsing prose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// The frame or request was malformed; fix the request.
    BadRequest,
    /// A read or write deadline expired; the daemon closes the
    /// connection after sending this.
    Timeout,
    /// Admission control shed the request before it touched any state;
    /// it is safe to retry after `retry_after_ms`.
    Overloaded {
        /// Suggested client backoff before retrying.
        retry_after_ms: u64,
    },
    /// The request was valid but the daemon failed to execute it.
    Internal,
}

impl ErrorKind {
    /// The wire tag for this kind.
    pub fn tag(&self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Overloaded { .. } => "overloaded",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A daemon response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request failed; unless the kind is [`ErrorKind::Timeout`],
    /// the connection stays usable.
    Error {
        /// Why it failed, typed.
        kind: ErrorKind,
        /// What went wrong, for humans.
        message: String,
    },
    /// Observations accepted.
    Submitted {
        /// Tasks now buffered for the next tick.
        buffered: usize,
        /// Lifetime observation count.
        total: u64,
    },
    /// The current plan (`None` before the first successful tick).
    Plan {
        /// Ticks completed when the plan was produced.
        tick: u64,
        /// The plan, if one exists.
        plan: Option<IntegerPlan>,
    },
    /// A per-class forecast.
    Forecast {
        /// Horizon actually used.
        horizon: usize,
        /// One forecast per task class.
        classes: Vec<ClassForecast>,
    },
    /// Status counters.
    Status(StatusBody),
    /// Live telemetry snapshot.
    Metrics(MetricsBody),
    /// A control tick ran.
    Ticked {
        /// Ticks completed after this one.
        tick: u64,
        /// The plan it produced.
        plan: IntegerPlan,
    },
    /// Drained degradation events.
    Events {
        /// The events, oldest first.
        events: Vec<DegradationEvent>,
    },
    /// A checkpoint was written.
    Snapshotted {
        /// Where it landed.
        path: String,
        /// Its size in bytes.
        bytes: u64,
    },
    /// The daemon acknowledged a graceful shutdown.
    ShuttingDown,
}

impl Response {
    /// A malformed-input error.
    pub fn bad_request(message: impl Into<String>) -> Response {
        Response::Error { kind: ErrorKind::BadRequest, message: message.into() }
    }

    /// A deadline-expiry error.
    pub fn timeout(message: impl Into<String>) -> Response {
        Response::Error { kind: ErrorKind::Timeout, message: message.into() }
    }

    /// A load-shedding error with a retry hint.
    pub fn overloaded(retry_after_ms: u64, message: impl Into<String>) -> Response {
        Response::Error {
            kind: ErrorKind::Overloaded { retry_after_ms },
            message: message.into(),
        }
    }

    /// A daemon-side execution failure.
    pub fn internal(message: impl Into<String>) -> Response {
        Response::Error { kind: ErrorKind::Internal, message: message.into() }
    }

    /// The wire type tag (`None` for errors, which carry no tag).
    pub fn tag(&self) -> Option<&'static str> {
        match self {
            Response::Error { .. } => None,
            Response::Submitted { .. } => Some("submitted"),
            Response::Plan { .. } => Some("plan"),
            Response::Forecast { .. } => Some("forecast"),
            Response::Status(_) => Some("status"),
            Response::Metrics(_) => Some("metrics"),
            Response::Ticked { .. } => Some("ticked"),
            Response::Events { .. } => Some("events"),
            Response::Snapshotted { .. } => Some("snapshotted"),
            Response::ShuttingDown => Some("shutting-down"),
        }
    }
}

impl Serialize for Response {
    // The Error arm of the match below is unreachable: that variant
    // returns early at the top of the fn.
    #[allow(clippy::unreachable)]
    fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        if let Response::Error { kind, message } = self {
            map.insert("ok".to_owned(), false.to_value());
            map.insert("kind".to_owned(), kind.tag().to_value());
            map.insert("error".to_owned(), message.to_value());
            if let ErrorKind::Overloaded { retry_after_ms } = kind {
                map.insert("retry_after_ms".to_owned(), retry_after_ms.to_value());
            }
            return Value::Object(map);
        }
        map.insert("ok".to_owned(), true.to_value());
        map.insert(
            "type".to_owned(),
            self.tag().unwrap_or_default().to_value(),
        );
        match self {
            Response::Error { .. } => unreachable!("handled above"),
            Response::Submitted { buffered, total } => {
                map.insert("buffered".to_owned(), buffered.to_value());
                map.insert("total".to_owned(), total.to_value());
            }
            Response::Plan { tick, plan } => {
                map.insert("tick".to_owned(), tick.to_value());
                map.insert("plan".to_owned(), plan.to_value());
            }
            Response::Forecast { horizon, classes } => {
                map.insert("horizon".to_owned(), horizon.to_value());
                map.insert("classes".to_owned(), classes.to_value());
            }
            Response::Status(body) => {
                if let Value::Object(fields) = body.to_value() {
                    map.extend(fields);
                }
            }
            Response::Metrics(body) => {
                if let Value::Object(fields) = body.to_value() {
                    map.extend(fields);
                }
            }
            Response::Ticked { tick, plan } => {
                map.insert("tick".to_owned(), tick.to_value());
                map.insert("plan".to_owned(), plan.to_value());
            }
            Response::Events { events } => {
                map.insert("events".to_owned(), events.to_value());
            }
            Response::Snapshotted { path, bytes } => {
                map.insert("path".to_owned(), path.to_value());
                map.insert("bytes".to_owned(), bytes.to_value());
            }
            Response::ShuttingDown => {}
        }
        Value::Object(map)
    }
}

impl Deserialize for Response {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if !bool::from_value(v.field("ok")?)? {
            // `kind` is absent in pre-resilience responses; default to
            // Internal so old daemons stay parseable.
            let kind = match v.get("kind") {
                None | Some(Value::Null) => ErrorKind::Internal,
                Some(tag) => match String::from_value(tag)?.as_str() {
                    "bad-request" => ErrorKind::BadRequest,
                    "timeout" => ErrorKind::Timeout,
                    "overloaded" => ErrorKind::Overloaded {
                        retry_after_ms: match v.get("retry_after_ms") {
                            Some(ms) => u64::from_value(ms)?,
                            None => 0,
                        },
                    },
                    "internal" => ErrorKind::Internal,
                    other => {
                        return Err(DeError::new(format!("unknown error kind `{other}`")))
                    }
                },
            };
            return Ok(Response::Error {
                kind,
                message: String::from_value(v.field("error")?)?,
            });
        }
        let tag = String::from_value(v.field("type")?)?;
        match tag.as_str() {
            "submitted" => Ok(Response::Submitted {
                buffered: usize::from_value(v.field("buffered")?)?,
                total: u64::from_value(v.field("total")?)?,
            }),
            "plan" => Ok(Response::Plan {
                tick: u64::from_value(v.field("tick")?)?,
                plan: Option::from_value(v.field("plan")?)?,
            }),
            "forecast" => Ok(Response::Forecast {
                horizon: usize::from_value(v.field("horizon")?)?,
                classes: Vec::from_value(v.field("classes")?)?,
            }),
            "status" => Ok(Response::Status(StatusBody::from_value(v)?)),
            "metrics" => Ok(Response::Metrics(MetricsBody::from_value(v)?)),
            "ticked" => Ok(Response::Ticked {
                tick: u64::from_value(v.field("tick")?)?,
                plan: IntegerPlan::from_value(v.field("plan")?)?,
            }),
            "events" => Ok(Response::Events { events: Vec::from_value(v.field("events")?)? }),
            "snapshotted" => Ok(Response::Snapshotted {
                path: String::from_value(v.field("path")?)?,
                bytes: u64::from_value(v.field("bytes")?)?,
            }),
            "shutting-down" => Ok(Response::ShuttingDown),
            other => Err(DeError::new(format!("unknown response type `{other}`"))),
        }
    }
}

/// Writes one message as a JSON line and flushes.
///
/// # Errors
///
/// Propagates writer failures; rejects messages over [`MAX_LINE_BYTES`].
pub fn write_line<W: Write, T: Serialize>(writer: &mut W, message: &T) -> io::Result<()> {
    let text = serde_json::to_string(message)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if text.len() > MAX_LINE_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("message of {} bytes exceeds the {MAX_LINE_BYTES}-byte line cap", text.len()),
        ));
    }
    writer.write_all(text.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Reads one line, enforcing [`MAX_LINE_BYTES`]. Returns `None` on a
/// clean EOF.
///
/// # Errors
///
/// Propagates reader failures; an over-long line yields
/// [`io::ErrorKind::InvalidData`].
pub fn read_line<R: BufRead>(reader: &mut R) -> io::Result<Option<String>> {
    read_frame(reader, None)
}

/// Reads one line like [`read_line`], but gives up once `deadline`
/// passes. The deadline is checked between buffered chunks, so it also
/// catches a byte-dribbling sender that never lets the socket-level
/// read timeout fire; for it to bound a *silent* peer, the underlying
/// stream must additionally carry a `set_read_timeout` no longer than
/// the deadline.
///
/// # Errors
///
/// An expired deadline (or a socket read timeout surfacing as
/// `WouldBlock`/`TimedOut`) yields [`io::ErrorKind::TimedOut`]; an
/// over-long or non-UTF-8 line yields [`io::ErrorKind::InvalidData`].
pub fn read_line_deadline<R: BufRead>(
    reader: &mut R,
    deadline: Instant,
) -> io::Result<Option<String>> {
    read_frame(reader, Some(deadline))
}

fn read_frame<R: BufRead>(reader: &mut R, deadline: Option<Instant>) -> io::Result<Option<String>> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (done, used) = {
            let chunk = match reader.fill_buf() {
                Ok(chunk) => chunk,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        if buf.is_empty() {
                            "idle deadline expired while waiting for a frame"
                        } else {
                            "read deadline expired mid-frame"
                        },
                    ));
                }
                Err(e) => return Err(e),
            };
            if chunk.is_empty() {
                // EOF: a clean boundary with nothing buffered, or the
                // final unterminated line.
                if buf.is_empty() {
                    return Ok(None);
                }
                (true, 0)
            } else {
                match chunk.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        buf.extend_from_slice(&chunk[..pos]);
                        (true, pos + 1)
                    }
                    None => {
                        let n = chunk.len();
                        buf.extend_from_slice(chunk);
                        (false, n)
                    }
                }
            }
        };
        reader.consume(used);
        // The cap applies to frame content (the newline is excluded),
        // matching write_line's accept condition exactly.
        if buf.len() > MAX_LINE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line exceeds the {MAX_LINE_BYTES}-byte cap"),
            ));
        }
        if done {
            break;
        }
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "read deadline expired mid-frame",
                ));
            }
        }
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "line is not valid UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_roundtrip_via_text() {
        let requests = vec![
            Request::GetPlan,
            Request::GetForecast { horizon: Some(6) },
            Request::GetForecast { horizon: None },
            Request::Status,
            Request::Metrics,
            Request::Tick,
            Request::DrainEvents,
            Request::Snapshot,
            Request::Shutdown,
            Request::SubmitObservations { tasks: Vec::new() },
        ];
        for req in requests {
            let text = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&text).unwrap();
            assert_eq!(back, req, "wire text: {text}");
        }
    }

    #[test]
    fn error_response_shape() {
        let resp = Response::bad_request("bad verb");
        let text = serde_json::to_string(&resp).unwrap();
        assert!(text.contains("\"ok\":false"), "{text}");
        assert!(text.contains("\"kind\":\"bad-request\""), "{text}");
        let back: Response = serde_json::from_str(&text).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn error_kinds_roundtrip() {
        for resp in [
            Response::bad_request("x"),
            Response::timeout("deadline expired"),
            Response::overloaded(250, "shed"),
            Response::internal("boom"),
        ] {
            let text = serde_json::to_string(&resp).unwrap();
            let back: Response = serde_json::from_str(&text).unwrap();
            assert_eq!(back, resp, "wire text: {text}");
        }
        // Overloaded carries its retry hint on the wire.
        let text =
            serde_json::to_string(&Response::overloaded(250, "shed")).unwrap();
        assert!(text.contains("\"retry_after_ms\":250"), "{text}");
        // A pre-resilience error without a kind still parses.
        let back: Response =
            serde_json::from_str("{\"ok\":false,\"error\":\"old daemon\"}").unwrap();
        assert_eq!(
            back,
            Response::Error { kind: ErrorKind::Internal, message: "old daemon".to_owned() }
        );
    }

    #[test]
    fn line_framing_enforces_cap() {
        let mut out = Vec::new();
        write_line(&mut out, &Request::Status).unwrap();
        assert!(out.ends_with(b"\n"));
        let mut reader = io::BufReader::new(&out[..]);
        assert_eq!(read_line(&mut reader).unwrap().unwrap(), "{\"verb\":\"status\"}");
        assert!(read_line(&mut reader).unwrap().is_none(), "EOF after one line");

        let long = vec![b'x'; MAX_LINE_BYTES + 10];
        let mut reader = io::BufReader::new(&long[..]);
        assert_eq!(read_line(&mut reader).unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn metrics_response_roundtrips() {
        let registry = harmony_telemetry::Registry::new();
        registry.counter("server.requests").add(7);
        registry.gauge("sim.pending_peak").set(12.0);
        registry.timer("pipeline.lp_seconds").stop();
        let body = MetricsBody::from(&registry.snapshot());
        assert_eq!(body.counters.get("server.requests"), Some(&7));
        assert_eq!(body.histograms.len(), 1);
        assert_eq!(body.histograms[0].count, 1);

        let resp = Response::Metrics(body);
        let text = serde_json::to_string(&resp).unwrap();
        assert!(text.contains("\"type\":\"metrics\""), "{text}");
        let back: Response = serde_json::from_str(&text).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn empty_metrics_body_roundtrips() {
        let resp = Response::Metrics(MetricsBody::default());
        let text = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&text).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn missing_verb_rejected() {
        assert!(serde_json::from_str::<Request>("{}").is_err());
        assert!(serde_json::from_str::<Request>("{\"verb\":\"frobnicate\"}").is_err());
    }

    // ------------------------------------------------------------------
    // Adversarial framing: every malformed input must yield a typed
    // error (or skippable empty frame), never a panic or a hang.
    // ------------------------------------------------------------------

    #[test]
    fn line_exactly_at_cap_is_accepted_just_past_is_rejected() {
        // Exactly MAX content bytes + newline: legal (write_line would
        // have produced it).
        let mut exact = vec![b'y'; MAX_LINE_BYTES];
        exact.push(b'\n');
        let mut reader = io::BufReader::new(&exact[..]);
        let line = read_line(&mut reader).unwrap().unwrap();
        assert_eq!(line.len(), MAX_LINE_BYTES);

        // One byte more: typed InvalidData, not a hang.
        let mut over = vec![b'y'; MAX_LINE_BYTES + 1];
        over.push(b'\n');
        let mut reader = io::BufReader::new(&over[..]);
        assert_eq!(read_line(&mut reader).unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_lines_and_interleaved_garbage_keep_the_stream_parseable() {
        let mut stream = Vec::new();
        write_line(&mut stream, &Request::Status).unwrap();
        stream.extend_from_slice(b"\n");
        stream.extend_from_slice(b"%%% not json at all {{{\n");
        write_line(&mut stream, &Request::Tick).unwrap();
        let mut reader = io::BufReader::new(&stream[..]);

        assert_eq!(read_line(&mut reader).unwrap().unwrap(), "{\"verb\":\"status\"}");
        assert_eq!(read_line(&mut reader).unwrap().unwrap(), "");
        let garbage = read_line(&mut reader).unwrap().unwrap();
        assert!(serde_json::from_str::<Request>(&garbage).is_err(), "typed parse error");
        assert_eq!(read_line(&mut reader).unwrap().unwrap(), "{\"verb\":\"tick\"}");
        assert!(read_line(&mut reader).unwrap().is_none());
    }

    #[test]
    fn utf8_split_across_reads_reassembles() {
        // A 1-byte BufReader forces every multi-byte char to arrive
        // split across fill_buf calls.
        let text = "héterogénéité ⚙ über alles";
        let mut framed = text.as_bytes().to_vec();
        framed.push(b'\n');
        let mut reader = io::BufReader::with_capacity(1, &framed[..]);
        assert_eq!(read_line(&mut reader).unwrap().unwrap(), text);
    }

    #[test]
    fn invalid_utf8_is_a_typed_error() {
        let bytes = b"\xff\xfe garbage\n";
        let mut reader = io::BufReader::new(&bytes[..]);
        assert_eq!(read_line(&mut reader).unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn unterminated_final_line_is_returned_at_eof() {
        let bytes = b"{\"verb\":\"status\"}";
        let mut reader = io::BufReader::new(&bytes[..]);
        assert_eq!(read_line(&mut reader).unwrap().unwrap(), "{\"verb\":\"status\"}");
        assert!(read_line(&mut reader).unwrap().is_none());
    }

    #[test]
    fn deadline_reader_times_out_on_a_dribbled_frame() {
        use std::io::Read;

        // A reader that yields one byte per call and never finishes the
        // frame: the deadline check between chunks must fire.
        struct Dribble;
        impl Read for Dribble {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                std::thread::sleep(std::time::Duration::from_millis(2));
                buf[0] = b'x';
                Ok(1)
            }
        }
        let mut reader = io::BufReader::with_capacity(1, Dribble);
        let deadline = Instant::now() + std::time::Duration::from_millis(30);
        let err = read_line_deadline(&mut reader, deadline).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn deadline_reader_maps_socket_timeouts_to_timed_out() {
        use std::io::Read;

        // A reader standing in for a socket whose read timeout expired.
        struct Silent;
        impl Read for Silent {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "no bytes"))
            }
        }
        let mut reader = io::BufReader::new(Silent);
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        let err = read_line_deadline(&mut reader, deadline).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }
}

//! Blocking client library for `harmonyd`.
//!
//! One request/response round-trip per call, over the same
//! newline-delimited JSON frames the daemon speaks. `harmonyctl` and
//! the end-to-end tests are both built on [`Client`].

use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

use harmony::monitor::ClassForecast;
use harmony::rounding::IntegerPlan;
use harmony_model::Task;
use harmony_sim::DegradationEvent;

use crate::protocol::{read_line, write_line, Request, Response, StatusBody};

/// A connected `harmonyd` client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn unexpected(response: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        match response {
            Response::Error { message } => format!("daemon error: {message}"),
            other => format!("unexpected response: {other:?}"),
        },
    )
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a closed connection yields
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        write_line(&mut self.writer, request)?;
        let line = read_line(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
        })?;
        serde_json::from_str(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Submits observations; returns (buffered, lifetime total).
    ///
    /// # Errors
    ///
    /// I/O failures or a daemon-side error response.
    pub fn submit(&mut self, tasks: Vec<Task>) -> io::Result<(usize, u64)> {
        match self.request(&Request::SubmitObservations { tasks })? {
            Response::Submitted { buffered, total } => Ok((buffered, total)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the current plan (None before the first tick).
    ///
    /// # Errors
    ///
    /// I/O failures or a daemon-side error response.
    pub fn get_plan(&mut self) -> io::Result<(u64, Option<IntegerPlan>)> {
        match self.request(&Request::GetPlan)? {
            Response::Plan { tick, plan } => Ok((tick, plan)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches per-class forecasts over `horizon` periods (daemon
    /// default when `None`).
    ///
    /// # Errors
    ///
    /// I/O failures or a daemon-side error response.
    pub fn get_forecast(&mut self, horizon: Option<usize>) -> io::Result<Vec<ClassForecast>> {
        match self.request(&Request::GetForecast { horizon })? {
            Response::Forecast { classes, .. } => Ok(classes),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches daemon status.
    ///
    /// # Errors
    ///
    /// I/O failures or a daemon-side error response.
    pub fn status(&mut self) -> io::Result<StatusBody> {
        match self.request(&Request::Status)? {
            Response::Status(body) => Ok(body),
            other => Err(unexpected(&other)),
        }
    }

    /// Forces one control period now; returns (tick, actuated plan).
    ///
    /// # Errors
    ///
    /// I/O failures or a daemon-side error response.
    pub fn tick(&mut self) -> io::Result<(u64, IntegerPlan)> {
        match self.request(&Request::Tick)? {
            Response::Ticked { tick, plan } => Ok((tick, plan)),
            other => Err(unexpected(&other)),
        }
    }

    /// Drains accumulated degradation events.
    ///
    /// # Errors
    ///
    /// I/O failures or a daemon-side error response.
    pub fn drain_events(&mut self) -> io::Result<Vec<DegradationEvent>> {
        match self.request(&Request::DrainEvents)? {
            Response::Events { events } => Ok(events),
            other => Err(unexpected(&other)),
        }
    }

    /// Forces a checkpoint; returns (path, bytes written).
    ///
    /// # Errors
    ///
    /// I/O failures or a daemon-side error response (e.g. no snapshot
    /// path configured).
    pub fn snapshot(&mut self) -> io::Result<(String, u64)> {
        match self.request(&Request::Snapshot)? {
            Response::Snapshotted { path, bytes } => Ok((path, bytes)),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the daemon to shut down gracefully.
    ///
    /// # Errors
    ///
    /// I/O failures or a daemon-side error response.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

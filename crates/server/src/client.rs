//! Blocking client library for `harmonyd`.
//!
//! One request/response round-trip per call, over the same
//! newline-delimited JSON frames the daemon speaks. `harmonyctl` and
//! the end-to-end tests are both built on [`Client`].
//!
//! When the daemon sheds load (`Error{kind: overloaded}`) or refuses a
//! connection, callers can retry under a [`RetryPolicy`]: capped
//! exponential backoff with *deterministic* decorrelated jitter, so a
//! thundering herd of clients spreads out yet any given seed replays an
//! identical schedule (the property the chaos harness asserts).

use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use harmony::monitor::ClassForecast;
use harmony::rounding::IntegerPlan;
use harmony_model::Task;
use harmony_sim::DegradationEvent;

use crate::protocol::{read_line, write_line, ErrorKind, Request, Response, StatusBody};
use crate::rng::SplitMix64;

/// Retry behavior for connecting and for `overloaded` responses.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries).
    pub attempts: u32,
    /// First backoff delay.
    pub base: Duration,
    /// Ceiling on any single delay.
    pub cap: Duration,
    /// Jitter seed; a fixed seed yields a fixed schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The deterministic delay schedule this policy produces: one delay
    /// per retry (`attempts − 1` entries).
    pub fn schedule(&self) -> RetrySchedule {
        RetrySchedule {
            rng: SplitMix64::new(self.seed),
            prev: self.base,
            base: self.base,
            cap: self.cap,
            remaining: self.attempts.saturating_sub(1),
        }
    }
}

/// Iterator over a [`RetryPolicy`]'s backoff delays (decorrelated
/// jitter: `d = min(cap, base + U(0,1)·(3·prev − base))`).
#[derive(Debug, Clone)]
pub struct RetrySchedule {
    rng: SplitMix64,
    prev: Duration,
    base: Duration,
    cap: Duration,
    remaining: u32,
}

impl Iterator for RetrySchedule {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let spread = (self.prev.saturating_mul(3)).saturating_sub(self.base);
        let jittered = self.base + spread.mul_f64(self.rng.next_f64());
        let delay = jittered.min(self.cap);
        self.prev = delay;
        Some(delay)
    }
}

/// A connected `harmonyd` client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn unexpected(response: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        match response {
            Response::Error { kind, message } => {
                format!("daemon error ({}): {message}", kind.tag())
            }
            other => format!("unexpected response: {other:?}"),
        },
    )
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Connects to a daemon, retrying connection failures on the
    /// policy's deterministic backoff schedule.
    ///
    /// # Errors
    ///
    /// Returns the last connection error once every attempt is spent.
    pub fn connect_with_retry<A: ToSocketAddrs>(addr: A, policy: &RetryPolicy) -> io::Result<Self> {
        let mut schedule = policy.schedule();
        loop {
            match Client::connect(&addr) {
                Ok(client) => return Ok(client),
                Err(e) => match schedule.next() {
                    Some(delay) => std::thread::sleep(delay),
                    None => return Err(e),
                },
            }
        }
    }

    /// Sends one request, retrying typed `overloaded` responses on the
    /// policy's backoff schedule (honoring the daemon's `retry_after_ms`
    /// hint when it exceeds the jittered delay). Other errors — including
    /// other error kinds — return immediately: only shedding is known to
    /// happen *before* any state mutation, so only shedding is safe to
    /// blindly retry.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; returns the final `overloaded` response
    /// once every attempt is spent.
    pub fn request_with_retry(
        &mut self,
        request: &Request,
        policy: &RetryPolicy,
    ) -> io::Result<Response> {
        let mut schedule = policy.schedule();
        loop {
            let response = self.request(request)?;
            let retry_after_ms = match &response {
                Response::Error { kind: ErrorKind::Overloaded { retry_after_ms }, .. } => {
                    *retry_after_ms
                }
                _ => return Ok(response),
            };
            match schedule.next() {
                Some(delay) => {
                    std::thread::sleep(delay.max(Duration::from_millis(retry_after_ms)));
                }
                None => return Ok(response),
            }
        }
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a closed connection yields
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        write_line(&mut self.writer, request)?;
        let line = read_line(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
        })?;
        serde_json::from_str(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Submits observations; returns (buffered, lifetime total).
    ///
    /// # Errors
    ///
    /// I/O failures or a daemon-side error response.
    pub fn submit(&mut self, tasks: Vec<Task>) -> io::Result<(usize, u64)> {
        match self.request(&Request::SubmitObservations { tasks })? {
            Response::Submitted { buffered, total } => Ok((buffered, total)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the current plan (None before the first tick).
    ///
    /// # Errors
    ///
    /// I/O failures or a daemon-side error response.
    pub fn get_plan(&mut self) -> io::Result<(u64, Option<IntegerPlan>)> {
        match self.request(&Request::GetPlan)? {
            Response::Plan { tick, plan } => Ok((tick, plan)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches per-class forecasts over `horizon` periods (daemon
    /// default when `None`).
    ///
    /// # Errors
    ///
    /// I/O failures or a daemon-side error response.
    pub fn get_forecast(&mut self, horizon: Option<usize>) -> io::Result<Vec<ClassForecast>> {
        match self.request(&Request::GetForecast { horizon })? {
            Response::Forecast { classes, .. } => Ok(classes),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches daemon status.
    ///
    /// # Errors
    ///
    /// I/O failures or a daemon-side error response.
    pub fn status(&mut self) -> io::Result<StatusBody> {
        match self.request(&Request::Status)? {
            Response::Status(body) => Ok(body),
            other => Err(unexpected(&other)),
        }
    }

    /// Forces one control period now; returns (tick, actuated plan).
    ///
    /// # Errors
    ///
    /// I/O failures or a daemon-side error response.
    pub fn tick(&mut self) -> io::Result<(u64, IntegerPlan)> {
        match self.request(&Request::Tick)? {
            Response::Ticked { tick, plan } => Ok((tick, plan)),
            other => Err(unexpected(&other)),
        }
    }

    /// Drains accumulated degradation events.
    ///
    /// # Errors
    ///
    /// I/O failures or a daemon-side error response.
    pub fn drain_events(&mut self) -> io::Result<Vec<DegradationEvent>> {
        match self.request(&Request::DrainEvents)? {
            Response::Events { events } => Ok(events),
            other => Err(unexpected(&other)),
        }
    }

    /// Forces a checkpoint; returns (path, bytes written).
    ///
    /// # Errors
    ///
    /// I/O failures or a daemon-side error response (e.g. no snapshot
    /// path configured).
    pub fn snapshot(&mut self) -> io::Result<(String, u64)> {
        match self.request(&Request::Snapshot)? {
            Response::Snapshotted { path, bytes } => Ok((path, bytes)),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the daemon to shut down gracefully.
    ///
    /// # Errors
    ///
    /// I/O failures or a daemon-side error response.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_schedule_is_deterministic_for_a_seed() {
        let policy = RetryPolicy { attempts: 6, seed: 42, ..RetryPolicy::default() };
        let a: Vec<Duration> = policy.schedule().collect();
        let b: Vec<Duration> = policy.schedule().collect();
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 5, "attempts − 1 delays");
        let other = RetryPolicy { seed: 43, ..policy };
        let c: Vec<Duration> = other.schedule().collect();
        assert_ne!(a[..c.len().min(a.len())], c[..], "different seed, different jitter");
    }

    #[test]
    fn retry_schedule_respects_base_and_cap() {
        let policy = RetryPolicy {
            attempts: 32,
            base: Duration::from_millis(50),
            cap: Duration::from_millis(400),
            seed: 7,
        };
        let delays: Vec<Duration> = policy.schedule().collect();
        assert_eq!(delays.len(), 31);
        for d in &delays {
            assert!(*d >= policy.base, "never below base: {d:?}");
            assert!(*d <= policy.cap, "never above cap: {d:?}");
        }
        // Decorrelated jitter must actually spread: with 31 draws the
        // odds of all delays landing identical are astronomically low.
        assert!(delays.windows(2).any(|w| w[0] != w[1]), "{delays:?}");
    }

    #[test]
    fn single_attempt_policy_never_sleeps() {
        let policy = RetryPolicy { attempts: 1, ..RetryPolicy::default() };
        assert_eq!(policy.schedule().count(), 0);
        let policy = RetryPolicy { attempts: 0, ..RetryPolicy::default() };
        assert_eq!(policy.schedule().count(), 0);
    }
}

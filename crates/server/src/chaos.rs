//! Seeded network-chaos harness for `harmonyd`.
//!
//! An in-process TCP proxy that forwards client ↔ daemon traffic while
//! injecting the failure modes a hostile network produces: partial
//! writes, byte-dribbled slow reads, and mid-frame disconnects — plus a
//! [`flood`] helper that storms a daemon with concurrent connections to
//! exercise admission control.
//!
//! # Determinism contract
//!
//! Every fault decision is drawn from a [`SplitMix64`] stream derived
//! from `(config.seed, connection index)`, so a given seed replays an
//! identical *set* of fault plans. Which client lands on which plan
//! still depends on accept order, so chaos tests assert
//! timing-independent properties (typed errors, no panics, plan-
//! sequence equality) rather than exact per-connection outcomes — see
//! DESIGN.md §13.
//!
//! Filesystem torture (bit flips, truncation) lives next to the
//! checkpoint code it attacks: [`crate::state::flip_bit`] and
//! [`crate::state::truncate_to`].

use std::io::{self, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::protocol::{read_line, write_line, ErrorKind, Request, Response};
use crate::rng::SplitMix64;

/// Mixes a connection index into the base seed (the splitmix64 golden
/// increment keeps neighbouring indices' streams uncorrelated).
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Fault-injection probabilities and shapes for a [`ChaosProxy`].
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Base seed for every per-connection fault plan.
    pub seed: u64,
    /// Probability a pump direction dribbles bytes instead of
    /// forwarding whole reads.
    pub dribble_prob: f64,
    /// Bytes per dribbled write.
    pub dribble_chunk: usize,
    /// Sleep between dribbled writes.
    pub dribble_delay: Duration,
    /// Probability a pump direction cuts the connection mid-stream.
    pub disconnect_prob: f64,
    /// A cut, when drawn, lands after `1..=disconnect_window` forwarded
    /// bytes — early enough to tear a frame.
    pub disconnect_window: usize,
}

impl ChaosConfig {
    /// The default fault mix under a specific seed.
    pub fn seeded(seed: u64) -> Self {
        ChaosConfig {
            seed,
            dribble_prob: 0.3,
            dribble_chunk: 3,
            dribble_delay: Duration::from_millis(5),
            disconnect_prob: 0.2,
            disconnect_window: 64,
        }
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig::seeded(0)
    }
}

/// One pump direction's predetermined faults.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FaultPlan {
    dribble: bool,
    cut_after: Option<usize>,
}

fn draw_plan(rng: &mut SplitMix64, config: &ChaosConfig) -> FaultPlan {
    let dribble = rng.chance(config.dribble_prob);
    let cut = rng.chance(config.disconnect_prob);
    FaultPlan {
        dribble,
        cut_after: cut.then(|| rng.below(config.disconnect_window.max(1)) + 1),
    }
}

/// A seeded fault-injecting TCP proxy in front of a daemon.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and starts forwarding every
    /// accepted connection to `upstream` under `config`'s fault plans.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(upstream: SocketAddr, config: ChaosConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_handle =
            thread::spawn(move || accept_loop(&listener, upstream, &config, &accept_stop));
        Ok(ChaosProxy { addr, stop, accept_handle: Some(accept_handle) })
    }

    /// Where chaos clients should connect.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and winds down the pump threads.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    config: &ChaosConfig,
    stop: &Arc<AtomicBool>,
) {
    let mut conn_id: u64 = 0;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let mut rng =
                    SplitMix64::new(config.seed ^ conn_id.wrapping_mul(SEED_STRIDE));
                conn_id += 1;
                let inbound = draw_plan(&mut rng, config);
                let outbound = draw_plan(&mut rng, config);
                match TcpStream::connect(upstream) {
                    Ok(server) => {
                        start_pumps(client, server, inbound, outbound, config, stop);
                    }
                    Err(_) => {
                        let _ = client.shutdown(Shutdown::Both);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn start_pumps(
    client: TcpStream,
    server: TcpStream,
    inbound: FaultPlan,
    outbound: FaultPlan,
    config: &ChaosConfig,
    stop: &Arc<AtomicBool>,
) {
    let (Ok(client_rx), Ok(server_rx)) = (client.try_clone(), server.try_clone()) else {
        let _ = client.shutdown(Shutdown::Both);
        let _ = server.shutdown(Shutdown::Both);
        return;
    };
    // Pump threads are detached: they poll the proxy's stop flag on a
    // 50ms read timeout, so they drain promptly after `stop()`.
    let config_in = config.clone();
    let stop_in = Arc::clone(stop);
    thread::spawn(move || pump(client_rx, server, &inbound, &config_in, &stop_in));
    let config_out = config.clone();
    let stop_out = Arc::clone(stop);
    thread::spawn(move || pump(server_rx, client, &outbound, &config_out, &stop_out));
}

/// Forwards `from` → `to` under one direction's fault plan until EOF,
/// an error, a planned cut, or proxy stop.
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    plan: &FaultPlan,
    config: &ChaosConfig,
    stop: &AtomicBool,
) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = [0u8; 4096];
    let mut forwarded: usize = 0;
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => {
                // Half-close propagation: the peer finished sending, so
                // finish our write side but leave the reverse pump alone.
                let _ = to.shutdown(Shutdown::Write);
                let _ = from.shutdown(Shutdown::Read);
                return;
            }
            Ok(n) => n,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                continue;
            }
            Err(_) => break,
        };
        let chunk = &buf[..n];
        if let Some(cut) = plan.cut_after {
            if forwarded + chunk.len() >= cut {
                // Mid-frame disconnect: forward a prefix, then sever.
                let keep = cut.saturating_sub(forwarded);
                let _ = forward(&mut to, &chunk[..keep], plan, config);
                break;
            }
        }
        if forward(&mut to, chunk, plan, config).is_err() {
            break;
        }
        forwarded += n;
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

fn forward(
    to: &mut TcpStream,
    chunk: &[u8],
    plan: &FaultPlan,
    config: &ChaosConfig,
) -> io::Result<()> {
    if plan.dribble {
        for piece in chunk.chunks(config.dribble_chunk.max(1)) {
            to.write_all(piece)?;
            thread::sleep(config.dribble_delay);
        }
        Ok(())
    } else {
        to.write_all(chunk)
    }
}

/// What a [`flood`] run observed, aggregated over every connection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FloodReport {
    /// Connections attempted.
    pub attempted: usize,
    /// TCP connects that succeeded.
    pub connected: usize,
    /// Connections that got any response frame back.
    pub responded: usize,
    /// Typed `overloaded` responses (admission control working).
    pub overloaded: usize,
    /// Typed `timeout` responses (deadline enforcement working).
    pub timeouts: usize,
    /// Connect or I/O failures.
    pub errors: usize,
}

impl FloodReport {
    fn absorb(&mut self, other: &FloodReport) {
        self.connected += other.connected;
        self.responded += other.responded;
        self.overloaded += other.overloaded;
        self.timeouts += other.timeouts;
        self.errors += other.errors;
    }
}

/// Storms `addr` with `connections` concurrent clients sending a seeded
/// mix of read-only requests, garbage frames, and partial-then-complete
/// frames, and reports what came back. Never sends a state-mutating
/// verb, so a flood cannot perturb the daemon's plan sequence.
pub fn flood(addr: SocketAddr, connections: usize, seed: u64) -> FloodReport {
    let handles: Vec<_> = (0..connections)
        .map(|i| {
            let seed = seed ^ (i as u64).wrapping_mul(SEED_STRIDE);
            thread::spawn(move || flood_one(addr, seed))
        })
        .collect();
    let mut report = FloodReport { attempted: connections, ..FloodReport::default() };
    for handle in handles {
        if let Ok(one) = handle.join() {
            report.absorb(&one);
        } else {
            report.errors += 1;
        }
    }
    report
}

fn render(request: &Request) -> Vec<u8> {
    let mut wire = Vec::new();
    let _ = write_line(&mut wire, request);
    wire
}

fn flood_one(addr: SocketAddr, seed: u64) -> FloodReport {
    let mut rng = SplitMix64::new(seed);
    let mut report = FloodReport::default();
    let Ok(mut stream) = TcpStream::connect(addr) else {
        report.errors = 1;
        return report;
    };
    report.connected = 1;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let (first, rest): (Vec<u8>, Option<Vec<u8>>) = match rng.below(4) {
        0 => (render(&Request::GetForecast { horizon: Some(2) }), None),
        1 => (render(&Request::GetPlan), None),
        2 => (b"!!! not json at all\n".to_vec(), None),
        _ => {
            // A frame torn across two writes — the daemon must
            // reassemble it, not hang or mis-frame.
            let full = render(&Request::Status);
            let split = full.len() / 2;
            (full[..split].to_vec(), Some(full[split..].to_vec()))
        }
    };
    if stream.write_all(&first).is_err() {
        report.errors = 1;
        return report;
    }
    if let Some(rest) = rest {
        thread::sleep(Duration::from_millis(20));
        if stream.write_all(&rest).is_err() {
            report.errors = 1;
            return report;
        }
    }
    let Ok(clone) = stream.try_clone() else {
        report.errors = 1;
        return report;
    };
    let mut reader = BufReader::new(clone);
    match read_line(&mut reader) {
        Ok(Some(line)) => {
            report.responded = 1;
            if let Ok(response) = serde_json::from_str::<Response>(&line) {
                match response {
                    Response::Error { kind: ErrorKind::Overloaded { .. }, .. } => {
                        report.overloaded = 1;
                    }
                    Response::Error { kind: ErrorKind::Timeout, .. } => report.timeouts = 1,
                    _ => {}
                }
            }
        }
        Ok(None) => {}
        Err(_) => report.errors = 1,
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plans_replay_for_a_seed() {
        let config = ChaosConfig::seeded(9);
        let draw_pair = |seed: u64| {
            let mut rng = SplitMix64::new(seed);
            (draw_plan(&mut rng, &config), draw_plan(&mut rng, &config))
        };
        assert_eq!(draw_pair(1), draw_pair(1), "same seed, same plans");
        let plans: Vec<_> = (0..32u64)
            .map(|i| draw_pair(config.seed ^ i.wrapping_mul(SEED_STRIDE)))
            .collect();
        assert!(plans.iter().any(|p| p != &plans[0]), "plans vary across connections");
    }

    fn echo_upstream() -> SocketAddr {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            while let Ok((mut socket, _)) = listener.accept() {
                let Ok(clone) = socket.try_clone() else { continue };
                let mut reader = BufReader::new(clone);
                while let Ok(Some(line)) = read_line(&mut reader) {
                    let mut out = line.into_bytes();
                    out.push(b'\n');
                    if socket.write_all(&out).is_err() {
                        break;
                    }
                }
            }
        });
        addr
    }

    #[test]
    fn dribbling_proxy_preserves_bytes() {
        let upstream = echo_upstream();
        let config = ChaosConfig {
            dribble_prob: 1.0,
            disconnect_prob: 0.0,
            ..ChaosConfig::seeded(5)
        };
        let mut proxy = ChaosProxy::start(upstream, config).unwrap();
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let payload = r#"{"verb":"get-plan"}"#;
        stream.write_all(format!("{payload}\n").as_bytes()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let line = read_line(&mut reader).unwrap().expect("echoed line");
        assert_eq!(line, payload, "dribbling reorders timing, never bytes");
        proxy.stop();
    }

    #[test]
    fn disconnecting_proxy_tears_the_stream() {
        let upstream = echo_upstream();
        let config = ChaosConfig {
            dribble_prob: 0.0,
            disconnect_prob: 1.0,
            disconnect_window: 4,
            ..ChaosConfig::seeded(6)
        };
        let mut proxy = ChaosProxy::start(upstream, config).unwrap();
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // Long frame: the proxy cuts within the first 4 bytes, so the
        // echo can never complete.
        let payload = format!("{}\n", "x".repeat(256));
        let _ = stream.write_all(payload.as_bytes());
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        if let Ok(Some(line)) = read_line(&mut reader) {
            panic!("torn frame must not echo, got {line:?}");
        }
        proxy.stop();
    }
}

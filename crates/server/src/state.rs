//! Crash-safe checkpoints for `harmonyd`.
//!
//! A [`Checkpoint`] carries everything needed to resurrect a daemon:
//! the controller configuration, the *source* the task classifier was
//! fitted from (a trace file with an integrity hash, or a synthetic
//! generator seed — the fit is deterministic, so the classifier is
//! rebuilt rather than serialized), the catalog spec, the
//! [`OnlineState`] (arrival histories, previous plan, tick counter,
//! pending degradation events), and any observations buffered but not
//! yet consumed by a tick.
//!
//! # Atomicity, integrity, and generations
//!
//! [`save_atomic`] wraps the serialized checkpoint in a CRC32-carrying
//! envelope (`{"crc32":N,"payload":{...}}`), writes it to `<path>.tmp`
//! (fsynced), rotates the current `<path>` to `<path>.1`, and then
//! `rename(2)`s the tmp over the target. On POSIX the renames are
//! atomic within a filesystem, so a reader — including a daemon
//! restarted after `kill -9` — sees either the previous complete
//! checkpoint or the new complete checkpoint, never a torn file. A
//! leftover `.tmp` after a crash is garbage: [`load_with_recovery`]
//! removes it (reporting [`RecoveryEvent::StaleTmpRemoved`]) and the
//! next save overwrites it regardless.
//!
//! The CRC covers the exact payload bytes inside the envelope, so
//! torn writes, truncation, and bit rot are all detected *before* any
//! JSON parse is attempted. When the primary fails verification,
//! [`load_with_recovery`] falls back to the `<path>.1` generation and
//! reports typed [`RecoveryEvent`]s instead of dying — the daemon
//! resumes from the last durable state rather than refusing to boot.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use harmony::classify::{ClassifierConfig, TaskClassifier};
use harmony::{CbsObjective, DollarCosts, HarmonyConfig, OnlineState};
use harmony_model::{MachineCatalog, PriorityGroup, SimDuration, Task};
use harmony_pricing::MarketPolicy;
use harmony_trace::{google_csv, Trace, TraceConfig, TraceGenerator};
use serde::value::{DeError, Value};
use serde::{Deserialize, Serialize};

/// Bumped whenever the checkpoint schema changes incompatibly.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Where the daemon's classifier (and logical workload) came from.
/// Refitting from the same source is deterministic, so the checkpoint
/// records the source instead of the fitted model.
#[derive(Debug, Clone, PartialEq)]
pub enum ClassifierSource {
    /// A trace file on disk, with an FNV-1a-64 hash of its bytes so a
    /// resume detects a swapped file.
    TraceFile {
        /// Path to the trace file.
        path: String,
        /// `jsonl` or `google-csv`.
        format: String,
        /// FNV-1a-64 of the file contents at fit time.
        hash: u64,
    },
    /// The synthetic evaluation workload.
    Synthetic {
        /// Generator seed.
        seed: u64,
        /// Trace span in seconds.
        span_secs: f64,
    },
}

impl Serialize for ClassifierSource {
    fn to_value(&self) -> Value {
        let mut map = std::collections::BTreeMap::new();
        match self {
            ClassifierSource::TraceFile { path, format, hash } => {
                map.insert("kind".to_owned(), "trace-file".to_value());
                map.insert("path".to_owned(), path.to_value());
                map.insert("format".to_owned(), format.to_value());
                // 64-bit hashes exceed the f64-exact integer range of
                // the JSON value model, so they travel as hex strings.
                map.insert("hash".to_owned(), Value::String(format!("{hash:#018x}")));
            }
            ClassifierSource::Synthetic { seed, span_secs } => {
                map.insert("kind".to_owned(), "synthetic".to_value());
                map.insert("seed".to_owned(), seed.to_value());
                map.insert("span_secs".to_owned(), span_secs.to_value());
            }
        }
        Value::Object(map)
    }
}

impl Deserialize for ClassifierSource {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match String::from_value(v.field("kind")?)?.as_str() {
            "trace-file" => {
                let text = String::from_value(v.field("hash")?)?;
                let hash = u64::from_str_radix(text.trim_start_matches("0x"), 16)
                    .map_err(|e| DeError::new(format!("bad hash `{text}`: {e}")))?;
                Ok(ClassifierSource::TraceFile {
                    path: String::from_value(v.field("path")?)?,
                    format: String::from_value(v.field("format")?)?,
                    hash,
                })
            }
            "synthetic" => Ok(ClassifierSource::Synthetic {
                seed: u64::from_value(v.field("seed")?)?,
                span_secs: f64::from_value(v.field("span_secs")?)?,
            }),
            other => Err(DeError::new(format!("unknown classifier source `{other}`"))),
        }
    }
}

/// The machine catalog, by name and divisor (catalogs are code-defined,
/// so a spec rebuilds one exactly).
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogSpec {
    /// `table2`, `table2-accel`, or `google10`.
    pub name: String,
    /// Population divisor passed to [`MachineCatalog::scaled`].
    pub divisor: usize,
}

impl CatalogSpec {
    /// Rebuilds the catalog this spec names.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown catalog name.
    pub fn build(&self) -> Result<MachineCatalog, String> {
        let base = match self.name.as_str() {
            "table2" => MachineCatalog::table2(),
            "table2-accel" => MachineCatalog::table2_with_accel(),
            "google10" => MachineCatalog::google_ten_types(),
            other => {
                return Err(format!(
                    "unknown catalog `{other}` (table2, table2-accel, or google10)"
                ))
            }
        };
        Ok(base.scaled(self.divisor.max(1)))
    }
}

impl Serialize for CatalogSpec {
    fn to_value(&self) -> Value {
        let mut map = std::collections::BTreeMap::new();
        map.insert("name".to_owned(), self.name.to_value());
        map.insert("divisor".to_owned(), self.divisor.to_value());
        Value::Object(map)
    }
}

impl Deserialize for CatalogSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(CatalogSpec {
            name: String::from_value(v.field("name")?)?,
            divisor: usize::from_value(v.field("divisor")?)?,
        })
    }
}

/// The provisioning objective, in rebuildable form. Dollar costing is
/// derived data — the default price book and SLO curves are
/// deterministic functions of (catalog, classifier groups, seed) — so
/// the checkpoint records the recipe rather than the tables, exactly
/// like [`ClassifierSource`] records the fit recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveSpec {
    /// Minimize energy + switching (the paper's Eq. 14 objective).
    Energy,
    /// Minimize dollars: rental + expected SLO-violation cost.
    Dollars {
        /// Allow spot pools (`true`) or stay on-demand only.
        spot: bool,
        /// Seed for the default price book.
        seed: u64,
    },
}

impl ObjectiveSpec {
    /// Rebuilds the concrete [`CbsObjective`] for a catalog and the
    /// refit classifier's per-class priority groups.
    pub fn build(&self, catalog: &MachineCatalog, groups: &[PriorityGroup]) -> CbsObjective {
        match self {
            ObjectiveSpec::Energy => CbsObjective::Energy,
            ObjectiveSpec::Dollars { spot, seed } => {
                let market =
                    if *spot { MarketPolicy::SpotAware } else { MarketPolicy::OnDemandOnly };
                CbsObjective::Dollars(DollarCosts::default_for(catalog, groups, market, *seed))
            }
        }
    }
}

impl Serialize for ObjectiveSpec {
    fn to_value(&self) -> Value {
        let mut map = std::collections::BTreeMap::new();
        match self {
            ObjectiveSpec::Energy => {
                map.insert("kind".to_owned(), "energy".to_value());
            }
            ObjectiveSpec::Dollars { spot, seed } => {
                map.insert("kind".to_owned(), "dollars".to_value());
                map.insert("spot".to_owned(), spot.to_value());
                map.insert("seed".to_owned(), seed.to_value());
            }
        }
        Value::Object(map)
    }
}

impl Deserialize for ObjectiveSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match String::from_value(v.field("kind")?)?.as_str() {
            "energy" => Ok(ObjectiveSpec::Energy),
            "dollars" => Ok(ObjectiveSpec::Dollars {
                spot: bool::from_value(v.field("spot")?)?,
                seed: u64::from_value(v.field("seed")?)?,
            }),
            other => Err(DeError::new(format!("unknown objective `{other}`"))),
        }
    }
}

/// One complete daemon checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Schema version ([`CHECKPOINT_VERSION`]).
    pub version: u64,
    /// Controller configuration.
    pub config: HarmonyConfig,
    /// Classifier calibration (the fit is deterministic given source +
    /// calibration, so refitting on resume reproduces the same classes).
    pub classifier: ClassifierConfig,
    /// Classifier provenance.
    pub source: ClassifierSource,
    /// Catalog provenance.
    pub catalog: CatalogSpec,
    /// Provisioning objective provenance (pre-cost checkpoints carry
    /// none and default to [`ObjectiveSpec::Energy`]).
    pub objective: ObjectiveSpec,
    /// The pipeline's mutable state.
    pub state: OnlineState,
    /// Observations buffered and not yet consumed by a tick.
    pub buffered: Vec<Task>,
    /// Lifetime observation count.
    pub total_observations: u64,
}

impl Serialize for Checkpoint {
    fn to_value(&self) -> Value {
        let mut map = std::collections::BTreeMap::new();
        map.insert("version".to_owned(), self.version.to_value());
        map.insert("config".to_owned(), self.config.to_value());
        map.insert("classifier".to_owned(), self.classifier.to_value());
        map.insert("source".to_owned(), self.source.to_value());
        map.insert("catalog".to_owned(), self.catalog.to_value());
        map.insert("objective".to_owned(), self.objective.to_value());
        map.insert("state".to_owned(), self.state.to_value());
        map.insert("buffered".to_owned(), self.buffered.to_value());
        map.insert("total_observations".to_owned(), self.total_observations.to_value());
        Value::Object(map)
    }
}

impl Deserialize for Checkpoint {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let version = u64::from_value(v.field("version")?)?;
        if version != CHECKPOINT_VERSION {
            return Err(DeError::new(format!(
                "checkpoint version {version} is not supported (expected {CHECKPOINT_VERSION})"
            )));
        }
        Ok(Checkpoint {
            version,
            config: HarmonyConfig::from_value(v.field("config")?)?,
            classifier: ClassifierConfig::from_value(v.field("classifier")?)?,
            source: ClassifierSource::from_value(v.field("source")?)?,
            catalog: CatalogSpec::from_value(v.field("catalog")?)?,
            // Checkpoints written before dollar costing have no
            // objective field: treat missing/null as Energy (the
            // lp_basis tolerance pattern), so old snapshots still load.
            objective: match v.field("objective") {
                Ok(Value::Null) | Err(_) => ObjectiveSpec::Energy,
                Ok(other) => ObjectiveSpec::from_value(other)?,
            },
            state: OnlineState::from_value(v.field("state")?)?,
            buffered: Vec::from_value(v.field("buffered")?)?,
            total_observations: u64::from_value(v.field("total_observations")?)?,
        })
    }
}

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte
/// slice — the checkpoint-envelope integrity check. Hand-rolled and
/// table-free like the rest of the vendored stand-ins, so the server
/// crate stays zero-dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a-64 over a byte slice — the trace-file integrity hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Loads a trace from a source, verifying the integrity hash for file
/// sources (`expected_hash` is `None` on first load, `Some` on resume).
/// Returns the trace and the hash that a checkpoint should record.
///
/// # Errors
///
/// Returns a message on I/O failures, parse failures, unknown formats,
/// or a hash mismatch.
pub fn load_source(
    source_path: Option<&str>,
    format: &str,
    synthetic_seed: u64,
    synthetic_span: SimDuration,
    expected_hash: Option<u64>,
) -> Result<(Trace, ClassifierSource), String> {
    match source_path {
        Some(path) => {
            let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let hash = fnv1a64(&bytes);
            if let Some(expected) = expected_hash {
                if hash != expected {
                    return Err(format!(
                        "trace file {path} changed since the checkpoint was written \
                         (hash {hash:#018x}, expected {expected:#018x})"
                    ));
                }
            }
            let trace = match format {
                "jsonl" => Trace::read_jsonl(&bytes[..]),
                "google-csv" => google_csv::read_task_events(&bytes[..]),
                other => return Err(format!("unknown trace format `{other}`")),
            }
            .map_err(|e| format!("cannot parse {path}: {e}"))?;
            let source = ClassifierSource::TraceFile {
                path: path.to_owned(),
                format: format.to_owned(),
                hash,
            };
            Ok((trace, source))
        }
        None => {
            let trace = TraceGenerator::new(
                TraceConfig::evaluation().with_seed(synthetic_seed).with_span(synthetic_span),
            )
            .generate();
            let source = ClassifierSource::Synthetic {
                seed: synthetic_seed,
                span_secs: synthetic_span.as_secs(),
            };
            Ok((trace, source))
        }
    }
}

/// Refits the classifier recorded by a [`ClassifierSource`]
/// (deterministic given the source and calibration).
///
/// # Errors
///
/// Returns a message on source-loading or fit failures.
pub fn refit_classifier(
    source: &ClassifierSource,
    config: &ClassifierConfig,
) -> Result<TaskClassifier, String> {
    let (trace, _) = match source {
        ClassifierSource::TraceFile { path, format, hash } => {
            load_source(Some(path), format, 0, SimDuration::ZERO, Some(*hash))?
        }
        ClassifierSource::Synthetic { seed, span_secs } => {
            load_source(None, "jsonl", *seed, SimDuration::from_secs(*span_secs), None)?
        }
    };
    TaskClassifier::fit(trace.tasks(), config).map_err(|e| format!("classifier fit failed: {e}"))
}

/// What [`load_with_recovery`] had to do beyond a clean read — the
/// typed degradation report for checkpoint restore, logged by the
/// daemon instead of crashing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// A `<path>.tmp` left by an interrupted save was removed; it can
    /// never poison a later [`save_atomic`].
    StaleTmpRemoved {
        /// The removed temp file.
        path: String,
    },
    /// The primary checkpoint failed CRC verification or parsing (or
    /// was missing) and was skipped.
    PrimaryRejected {
        /// The rejected file.
        path: String,
        /// Why it was rejected (truncation, CRC mismatch, parse error).
        reason: String,
    },
    /// The previous generation (`<path>.1`) served the restore.
    RecoveredFromGeneration {
        /// The generation file that was loaded.
        path: String,
    },
    /// A pre-CRC (bare-payload) checkpoint was accepted without
    /// integrity verification.
    LegacyUnverified {
        /// The legacy file.
        path: String,
    },
}

impl std::fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryEvent::StaleTmpRemoved { path } => {
                write!(f, "removed stale checkpoint temp file {path}")
            }
            RecoveryEvent::PrimaryRejected { path, reason } => {
                write!(f, "rejected checkpoint {path}: {reason}")
            }
            RecoveryEvent::RecoveredFromGeneration { path } => {
                write!(f, "recovered from previous checkpoint generation {path}")
            }
            RecoveryEvent::LegacyUnverified { path } => {
                write!(f, "loaded legacy (pre-CRC) checkpoint {path} without verification")
            }
        }
    }
}

/// `<path>.tmp` — the staging file for an atomic save.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

/// `<path>.1` — the previous checkpoint generation kept as a fallback.
pub fn generation_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".1");
    PathBuf::from(os)
}

const ENVELOPE_PREFIX: &str = "{\"crc32\":";
const ENVELOPE_PAYLOAD: &str = ",\"payload\":";

/// Wraps serialized payload text in the CRC envelope. The CRC covers
/// the payload bytes exactly as embedded, so verification never depends
/// on JSON re-serialization being canonical.
fn encode_envelope(payload: &str) -> String {
    format!("{ENVELOPE_PREFIX}{}{ENVELOPE_PAYLOAD}{payload}}}\n", crc32(payload.as_bytes()))
}

/// Splits envelope text into (stored CRC, payload bytes). Structural
/// damage — truncation, a torn tail, garbage — is a typed error here,
/// before any JSON parsing.
fn decode_envelope(text: &str) -> Result<(u32, &str), String> {
    let trimmed = text.trim_end_matches(['\n', '\r']);
    let rest = trimmed
        .strip_prefix(ENVELOPE_PREFIX)
        .ok_or_else(|| "missing envelope prefix".to_owned())?;
    let sep = rest
        .find(ENVELOPE_PAYLOAD)
        .ok_or_else(|| "envelope missing payload separator (truncated?)".to_owned())?;
    let crc: u32 = rest[..sep]
        .parse()
        .map_err(|e| format!("bad envelope crc field `{}`: {e}", &rest[..sep]))?;
    let body = &rest[sep + ENVELOPE_PAYLOAD.len()..];
    let payload = body
        .strip_suffix('}')
        .ok_or_else(|| "envelope missing closing brace (truncated?)".to_owned())?;
    Ok((crc, payload))
}

/// Serializes a checkpoint into the CRC envelope, writes it to
/// `<path>.tmp`, fsyncs, rotates the current `path` to `<path>.1`, and
/// atomically renames the tmp over `path`. After a successful save,
/// `path` holds the new checkpoint and `<path>.1` the previous one.
///
/// # Errors
///
/// Propagates I/O failures (the `.tmp` file may remain; it is inert —
/// [`load_with_recovery`] removes it). The generation rotation is
/// best-effort: its failure never blocks the primary rename.
pub fn save_atomic(checkpoint: &Checkpoint, path: &Path) -> io::Result<u64> {
    write_atomic(&encode_checkpoint(checkpoint)?, path)
}

/// Serializes a checkpoint into its CRC-enveloped on-disk text without
/// touching the filesystem — the pure half of [`save_atomic`], so
/// callers can render under a lock and write after releasing it.
///
/// # Errors
///
/// Serialization failures surface as [`io::ErrorKind::InvalidData`].
pub fn encode_checkpoint(checkpoint: &Checkpoint) -> io::Result<String> {
    let payload = serde_json::to_string(checkpoint)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(encode_envelope(&payload))
}

/// Writes already-encoded checkpoint text to `<path>.tmp`, fsyncs,
/// rotates the current `path` to `<path>.1`, and atomically renames
/// the tmp over `path` — the I/O half of [`save_atomic`]. Returns the
/// bytes written.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_atomic(text: &str, path: &Path) -> io::Result<u64> {
    let tmp = tmp_path(path);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
    }
    if path.exists() {
        let _ = fs::rename(path, generation_path(path));
    }
    fs::rename(&tmp, path)?;
    Ok(text.len() as u64)
}

/// Reads and verifies one checkpoint file. The bool is `true` when the
/// file was a legacy bare payload accepted without CRC verification.
fn read_verified(path: &Path) -> Result<(Checkpoint, bool), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    if text.starts_with(ENVELOPE_PREFIX) {
        let (stored, payload) = decode_envelope(&text)?;
        let computed = crc32(payload.as_bytes());
        if computed != stored {
            return Err(format!(
                "crc mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ));
        }
        let checkpoint =
            serde_json::from_str(payload).map_err(|e| format!("payload parse failed: {e}"))?;
        Ok((checkpoint, false))
    } else {
        // Pre-CRC checkpoints are bare payloads; accept them so old
        // snapshots keep loading, but flag the missing verification.
        let checkpoint =
            serde_json::from_str(&text).map_err(|e| format!("parse failed: {e}"))?;
        Ok((checkpoint, true))
    }
}

/// Loads a checkpoint, surviving a corrupt or missing primary: removes
/// any stale `<path>.tmp`, verifies the primary's CRC, and falls back
/// to the `<path>.1` generation when the primary is torn, truncated,
/// bit-flipped, or absent. Every deviation from a clean read is
/// reported as a typed [`RecoveryEvent`].
///
/// # Errors
///
/// Fails only when *both* the primary and the fallback generation are
/// unreadable; the combined reasons land in one
/// [`io::ErrorKind::InvalidData`] error.
pub fn load_with_recovery(path: &Path) -> io::Result<(Checkpoint, Vec<RecoveryEvent>)> {
    let mut events = Vec::new();
    let tmp = tmp_path(path);
    if tmp.exists() && fs::remove_file(&tmp).is_ok() {
        events.push(RecoveryEvent::StaleTmpRemoved { path: tmp.display().to_string() });
    }
    match read_verified(path) {
        Ok((checkpoint, legacy)) => {
            if legacy {
                events.push(RecoveryEvent::LegacyUnverified { path: path.display().to_string() });
            }
            Ok((checkpoint, events))
        }
        Err(reason) => {
            events.push(RecoveryEvent::PrimaryRejected {
                path: path.display().to_string(),
                reason: reason.clone(),
            });
            let generation = generation_path(path);
            match read_verified(&generation) {
                Ok((checkpoint, legacy)) => {
                    if legacy {
                        events.push(RecoveryEvent::LegacyUnverified {
                            path: generation.display().to_string(),
                        });
                    }
                    events.push(RecoveryEvent::RecoveredFromGeneration {
                        path: generation.display().to_string(),
                    });
                    Ok((checkpoint, events))
                }
                Err(generation_reason) => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "checkpoint unrecoverable: primary {}: {reason}; generation {}: \
                         {generation_reason}",
                        path.display(),
                        generation.display()
                    ),
                )),
            }
        }
    }
}

/// Loads a checkpoint from disk ([`load_with_recovery`] with the
/// recovery report discarded).
///
/// # Errors
///
/// Propagates I/O failures; contents unrecoverable from both
/// generations yield [`io::ErrorKind::InvalidData`].
pub fn load(path: &Path) -> io::Result<Checkpoint> {
    load_with_recovery(path).map(|(checkpoint, _)| checkpoint)
}

/// Truncates a checkpoint file to `len` bytes — the torture helper the
/// chaos harness uses to simulate a torn write.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn truncate_to(path: &Path, len: u64) -> io::Result<()> {
    let file = fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(len)?;
    file.sync_all()
}

/// Flips one bit of a checkpoint file (`byte_index` wraps modulo the
/// file length) — the torture helper the chaos harness uses to
/// simulate bit rot.
///
/// # Errors
///
/// Propagates I/O failures; flipping a bit of an empty file is an
/// [`io::ErrorKind::InvalidInput`] error.
pub fn flip_bit(path: &Path, byte_index: u64, bit: u8) -> io::Result<()> {
    let mut bytes = fs::read(path)?;
    if bytes.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "cannot flip a bit of an empty file"));
    }
    let idx = (byte_index % bytes.len() as u64) as usize;
    if let Some(byte) = bytes.get_mut(idx) {
        *byte ^= 1 << (bit % 8);
    }
    fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a-64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn crc_vectors() {
        // The IEEE 802.3 check value plus degenerate inputs.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"harmony"), crc32(b"harmonx"));
    }

    #[test]
    fn envelope_roundtrip_and_truncation_detection() {
        let payload = r#"{"k":1,"f":0.5}"#;
        let text = encode_envelope(payload);
        assert!(text.ends_with('\n'));
        let (crc, body) = decode_envelope(&text).unwrap();
        assert_eq!(body, payload);
        assert_eq!(crc, crc32(payload.as_bytes()));
        // Structural damage is caught before any JSON parse.
        assert!(decode_envelope(&text[..text.len() - 3]).is_err());
        assert!(decode_envelope("{\"crc32\":12").is_err());
        assert!(decode_envelope("not an envelope").is_err());
    }

    fn test_checkpoint(ticks: u64) -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            config: HarmonyConfig::default(),
            classifier: ClassifierConfig { k_per_group: Some([2, 2, 2]), ..Default::default() },
            source: ClassifierSource::Synthetic { seed: 9, span_secs: 120.0 },
            catalog: CatalogSpec { name: "table2".to_owned(), divisor: 100 },
            objective: ObjectiveSpec::Energy,
            state: OnlineState {
                ticks,
                errors: 0,
                histories: vec![vec![0.5, 0.25]],
                last_plan: None,
                pending_events: Vec::new(),
                lp_basis: None,
                cost_dollars: 0.0,
            },
            buffered: Vec::new(),
            total_observations: ticks * 10,
        }
    }

    fn test_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("harmonyd-state-{label}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn second_save_rotates_previous_generation() {
        let dir = test_dir("rotate");
        let path = dir.join("ckpt.json");
        save_atomic(&test_checkpoint(1), &path).unwrap();
        assert!(!generation_path(&path).exists(), "no generation after first save");
        save_atomic(&test_checkpoint(2), &path).unwrap();
        let generation = generation_path(&path);
        assert!(generation.exists(), "second save keeps the previous generation");
        assert_eq!(load(&path).unwrap().state.ticks, 2);
        assert_eq!(load(&generation).unwrap().state.ticks, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_in_primary_falls_back_to_generation() {
        let dir = test_dir("bitflip");
        let path = dir.join("ckpt.json");
        save_atomic(&test_checkpoint(1), &path).unwrap();
        save_atomic(&test_checkpoint(2), &path).unwrap();
        // Flip a bit somewhere in the payload region (past the header).
        flip_bit(&path, 40, 2).unwrap();
        let (back, events) = load_with_recovery(&path).unwrap();
        assert_eq!(back.state.ticks, 1, "the intact generation serves the restore");
        assert!(
            events.iter().any(|e| matches!(e, RecoveryEvent::PrimaryRejected { .. })),
            "events: {events:?}"
        );
        assert!(
            events.iter().any(|e| matches!(e, RecoveryEvent::RecoveredFromGeneration { .. })),
            "events: {events:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_primary_falls_back_to_generation() {
        let dir = test_dir("truncate");
        let path = dir.join("ckpt.json");
        save_atomic(&test_checkpoint(1), &path).unwrap();
        save_atomic(&test_checkpoint(2), &path).unwrap();
        let len = fs::metadata(&path).unwrap().len();
        truncate_to(&path, len / 2).unwrap();
        let (back, events) = load_with_recovery(&path).unwrap();
        assert_eq!(back.state.ticks, 1);
        assert!(events.iter().any(|e| matches!(e, RecoveryEvent::PrimaryRejected { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_primary_falls_back_to_generation() {
        let dir = test_dir("missing");
        let path = dir.join("ckpt.json");
        save_atomic(&test_checkpoint(1), &path).unwrap();
        save_atomic(&test_checkpoint(2), &path).unwrap();
        fs::remove_file(&path).unwrap();
        let (back, events) = load_with_recovery(&path).unwrap();
        assert_eq!(back.state.ticks, 1);
        assert!(events.iter().any(|e| matches!(e, RecoveryEvent::RecoveredFromGeneration { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn both_generations_corrupt_is_a_typed_error() {
        let dir = test_dir("hopeless");
        let path = dir.join("ckpt.json");
        save_atomic(&test_checkpoint(1), &path).unwrap();
        save_atomic(&test_checkpoint(2), &path).unwrap();
        truncate_to(&path, 10).unwrap();
        truncate_to(&generation_path(&path), 10).unwrap();
        let err = load_with_recovery(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("unrecoverable"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmp_never_poisons_the_next_save() {
        // Regression: a crash between `File::create(.tmp)` and the
        // rename leaves a stale tmp; load must remove it, and a later
        // save_atomic must succeed and leave no tmp behind.
        let dir = test_dir("staletmp");
        let path = dir.join("ckpt.json");
        save_atomic(&test_checkpoint(1), &path).unwrap();
        fs::write(tmp_path(&path), b"{\"torn mid-write").unwrap();
        let (back, events) = load_with_recovery(&path).unwrap();
        assert_eq!(back.state.ticks, 1);
        assert!(
            events.iter().any(|e| matches!(e, RecoveryEvent::StaleTmpRemoved { .. })),
            "events: {events:?}"
        );
        assert!(!tmp_path(&path).exists());
        save_atomic(&test_checkpoint(2), &path).unwrap();
        assert!(!tmp_path(&path).exists());
        assert_eq!(load(&path).unwrap().state.ticks, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_bare_payload_checkpoints_still_load() {
        let dir = test_dir("legacy");
        let path = dir.join("ckpt.json");
        let payload = serde_json::to_string(&test_checkpoint(3)).unwrap();
        fs::write(&path, format!("{payload}\n")).unwrap();
        let (back, events) = load_with_recovery(&path).unwrap();
        assert_eq!(back.state.ticks, 3);
        assert!(events.iter().any(|e| matches!(e, RecoveryEvent::LegacyUnverified { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_roundtrip_and_atomic_save() {
        let dir = std::env::temp_dir().join(format!("harmonyd-state-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let checkpoint = Checkpoint {
            version: CHECKPOINT_VERSION,
            config: HarmonyConfig::default(),
            classifier: ClassifierConfig { k_per_group: Some([2, 2, 2]), ..Default::default() },
            // Hash above 2^53 exercises the hex-string encoding.
            source: ClassifierSource::TraceFile {
                path: "/data/trace.jsonl".to_owned(),
                format: "jsonl".to_owned(),
                hash: 0xdead_beef_cafe_f00d,
            },
            catalog: CatalogSpec { name: "table2".to_owned(), divisor: 100 },
            objective: ObjectiveSpec::Dollars { spot: true, seed: 2013 },
            state: OnlineState {
                ticks: 5,
                errors: 1,
                histories: vec![vec![0.5, 0.25], vec![0.0, 1.0]],
                last_plan: None,
                pending_events: Vec::new(),
                lp_basis: None,
                cost_dollars: 1.5,
            },
            buffered: Vec::new(),
            total_observations: 123,
        };
        let bytes = save_atomic(&checkpoint, &path).unwrap();
        assert!(bytes > 0);
        assert!(!dir.join("ckpt.json.tmp").exists(), "tmp renamed away");
        let back = load(&path).unwrap();
        assert_eq!(back, checkpoint);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_mismatch_rejected() {
        let checkpoint = Checkpoint {
            version: CHECKPOINT_VERSION,
            config: HarmonyConfig::default(),
            classifier: ClassifierConfig::default(),
            source: ClassifierSource::Synthetic { seed: 1, span_secs: 60.0 },
            catalog: CatalogSpec { name: "table2".to_owned(), divisor: 1 },
            objective: ObjectiveSpec::Energy,
            state: OnlineState {
                ticks: 0,
                errors: 0,
                histories: Vec::new(),
                last_plan: None,
                pending_events: Vec::new(),
                lp_basis: None,
                cost_dollars: 0.0,
            },
            buffered: Vec::new(),
            total_observations: 0,
        };
        let mut v = checkpoint.to_value();
        if let Value::Object(map) = &mut v {
            map.insert("version".to_owned(), Value::Number(99.0));
        }
        assert!(Checkpoint::from_value(&v).is_err());
    }

    #[test]
    fn catalog_spec_builds_known_catalogs() {
        let spec = CatalogSpec { name: "table2".to_owned(), divisor: 100 };
        assert_eq!(spec.build().unwrap().len(), 4);
        let spec = CatalogSpec { name: "table2-accel".to_owned(), divisor: 100 };
        let accel = spec.build().unwrap();
        assert_eq!(accel.len(), 5);
        assert!(accel.iter().any(|ty| ty.accel_capacity > 0.0));
        let spec = CatalogSpec { name: "google10".to_owned(), divisor: 100 };
        assert!(spec.build().unwrap().len() >= 10);
        let spec = CatalogSpec { name: "nope".to_owned(), divisor: 1 };
        assert!(spec.build().is_err());
    }

    #[test]
    fn objective_spec_roundtrips_and_tolerates_absence() {
        for spec in [
            ObjectiveSpec::Energy,
            ObjectiveSpec::Dollars { spot: false, seed: 7 },
            ObjectiveSpec::Dollars { spot: true, seed: 2013 },
        ] {
            let back = ObjectiveSpec::from_value(&spec.to_value()).unwrap();
            assert_eq!(back, spec);
        }
        // A checkpoint written before dollar costing existed has no
        // `objective` key — it must still load, as Energy.
        let checkpoint = test_checkpoint(4);
        let mut v = checkpoint.to_value();
        if let Value::Object(map) = &mut v {
            assert!(map.remove("objective").is_some());
        }
        let back = Checkpoint::from_value(&v).unwrap();
        assert_eq!(back.objective, ObjectiveSpec::Energy);
        assert_eq!(back.state.ticks, 4);
    }

    #[test]
    fn dollar_checkpoint_roundtrips_objective() {
        let dir = test_dir("objective");
        let path = dir.join("ckpt.json");
        let mut checkpoint = test_checkpoint(2);
        checkpoint.objective = ObjectiveSpec::Dollars { spot: true, seed: 99 };
        checkpoint.catalog = CatalogSpec { name: "table2-accel".to_owned(), divisor: 100 };
        save_atomic(&checkpoint, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, checkpoint);
        // The spec rebuilds a concrete dollar objective on the accel
        // catalog for any class/group layout.
        let catalog = back.catalog.build().unwrap();
        let objective = back.objective.build(
            &catalog,
            &[PriorityGroup::Production, PriorityGroup::Other],
        );
        match objective {
            CbsObjective::Dollars(costs) => {
                assert_eq!(costs.slo_costs.len(), 2);
                assert_eq!(costs.accel_demand, vec![0.0, 0.0]);
                assert!(costs.book.check_covers(&catalog).is_ok());
            }
            CbsObjective::Energy => panic!("expected a dollar objective"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}

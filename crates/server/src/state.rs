//! Crash-safe checkpoints for `harmonyd`.
//!
//! A [`Checkpoint`] carries everything needed to resurrect a daemon:
//! the controller configuration, the *source* the task classifier was
//! fitted from (a trace file with an integrity hash, or a synthetic
//! generator seed — the fit is deterministic, so the classifier is
//! rebuilt rather than serialized), the catalog spec, the
//! [`OnlineState`] (arrival histories, previous plan, tick counter,
//! pending degradation events), and any observations buffered but not
//! yet consumed by a tick.
//!
//! # Atomicity
//!
//! [`save_atomic`] serializes to `<path>.tmp` (fsynced) and then
//! `rename(2)`s over the target. On POSIX the rename is atomic within a
//! filesystem, so a reader — including a daemon restarted after
//! `kill -9` — sees either the previous complete checkpoint or the new
//! complete checkpoint, never a torn file. A leftover `.tmp` after a
//! crash is garbage and is ignored (and overwritten) by the next save.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use harmony::classify::{ClassifierConfig, TaskClassifier};
use harmony::{HarmonyConfig, OnlineState};
use harmony_model::{MachineCatalog, SimDuration, Task};
use harmony_trace::{google_csv, Trace, TraceConfig, TraceGenerator};
use serde::value::{DeError, Value};
use serde::{Deserialize, Serialize};

/// Bumped whenever the checkpoint schema changes incompatibly.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Where the daemon's classifier (and logical workload) came from.
/// Refitting from the same source is deterministic, so the checkpoint
/// records the source instead of the fitted model.
#[derive(Debug, Clone, PartialEq)]
pub enum ClassifierSource {
    /// A trace file on disk, with an FNV-1a-64 hash of its bytes so a
    /// resume detects a swapped file.
    TraceFile {
        /// Path to the trace file.
        path: String,
        /// `jsonl` or `google-csv`.
        format: String,
        /// FNV-1a-64 of the file contents at fit time.
        hash: u64,
    },
    /// The synthetic evaluation workload.
    Synthetic {
        /// Generator seed.
        seed: u64,
        /// Trace span in seconds.
        span_secs: f64,
    },
}

impl Serialize for ClassifierSource {
    fn to_value(&self) -> Value {
        let mut map = std::collections::BTreeMap::new();
        match self {
            ClassifierSource::TraceFile { path, format, hash } => {
                map.insert("kind".to_owned(), "trace-file".to_value());
                map.insert("path".to_owned(), path.to_value());
                map.insert("format".to_owned(), format.to_value());
                // 64-bit hashes exceed the f64-exact integer range of
                // the JSON value model, so they travel as hex strings.
                map.insert("hash".to_owned(), Value::String(format!("{hash:#018x}")));
            }
            ClassifierSource::Synthetic { seed, span_secs } => {
                map.insert("kind".to_owned(), "synthetic".to_value());
                map.insert("seed".to_owned(), seed.to_value());
                map.insert("span_secs".to_owned(), span_secs.to_value());
            }
        }
        Value::Object(map)
    }
}

impl Deserialize for ClassifierSource {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match String::from_value(v.field("kind")?)?.as_str() {
            "trace-file" => {
                let text = String::from_value(v.field("hash")?)?;
                let hash = u64::from_str_radix(text.trim_start_matches("0x"), 16)
                    .map_err(|e| DeError::new(format!("bad hash `{text}`: {e}")))?;
                Ok(ClassifierSource::TraceFile {
                    path: String::from_value(v.field("path")?)?,
                    format: String::from_value(v.field("format")?)?,
                    hash,
                })
            }
            "synthetic" => Ok(ClassifierSource::Synthetic {
                seed: u64::from_value(v.field("seed")?)?,
                span_secs: f64::from_value(v.field("span_secs")?)?,
            }),
            other => Err(DeError::new(format!("unknown classifier source `{other}`"))),
        }
    }
}

/// The machine catalog, by name and divisor (catalogs are code-defined,
/// so a spec rebuilds one exactly).
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogSpec {
    /// `table2` or `google10`.
    pub name: String,
    /// Population divisor passed to [`MachineCatalog::scaled`].
    pub divisor: usize,
}

impl CatalogSpec {
    /// Rebuilds the catalog this spec names.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown catalog name.
    pub fn build(&self) -> Result<MachineCatalog, String> {
        let base = match self.name.as_str() {
            "table2" => MachineCatalog::table2(),
            "google10" => MachineCatalog::google_ten_types(),
            other => return Err(format!("unknown catalog `{other}` (table2 or google10)")),
        };
        Ok(base.scaled(self.divisor.max(1)))
    }
}

impl Serialize for CatalogSpec {
    fn to_value(&self) -> Value {
        let mut map = std::collections::BTreeMap::new();
        map.insert("name".to_owned(), self.name.to_value());
        map.insert("divisor".to_owned(), self.divisor.to_value());
        Value::Object(map)
    }
}

impl Deserialize for CatalogSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(CatalogSpec {
            name: String::from_value(v.field("name")?)?,
            divisor: usize::from_value(v.field("divisor")?)?,
        })
    }
}

/// One complete daemon checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Schema version ([`CHECKPOINT_VERSION`]).
    pub version: u64,
    /// Controller configuration.
    pub config: HarmonyConfig,
    /// Classifier calibration (the fit is deterministic given source +
    /// calibration, so refitting on resume reproduces the same classes).
    pub classifier: ClassifierConfig,
    /// Classifier provenance.
    pub source: ClassifierSource,
    /// Catalog provenance.
    pub catalog: CatalogSpec,
    /// The pipeline's mutable state.
    pub state: OnlineState,
    /// Observations buffered and not yet consumed by a tick.
    pub buffered: Vec<Task>,
    /// Lifetime observation count.
    pub total_observations: u64,
}

impl Serialize for Checkpoint {
    fn to_value(&self) -> Value {
        let mut map = std::collections::BTreeMap::new();
        map.insert("version".to_owned(), self.version.to_value());
        map.insert("config".to_owned(), self.config.to_value());
        map.insert("classifier".to_owned(), self.classifier.to_value());
        map.insert("source".to_owned(), self.source.to_value());
        map.insert("catalog".to_owned(), self.catalog.to_value());
        map.insert("state".to_owned(), self.state.to_value());
        map.insert("buffered".to_owned(), self.buffered.to_value());
        map.insert("total_observations".to_owned(), self.total_observations.to_value());
        Value::Object(map)
    }
}

impl Deserialize for Checkpoint {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let version = u64::from_value(v.field("version")?)?;
        if version != CHECKPOINT_VERSION {
            return Err(DeError::new(format!(
                "checkpoint version {version} is not supported (expected {CHECKPOINT_VERSION})"
            )));
        }
        Ok(Checkpoint {
            version,
            config: HarmonyConfig::from_value(v.field("config")?)?,
            classifier: ClassifierConfig::from_value(v.field("classifier")?)?,
            source: ClassifierSource::from_value(v.field("source")?)?,
            catalog: CatalogSpec::from_value(v.field("catalog")?)?,
            state: OnlineState::from_value(v.field("state")?)?,
            buffered: Vec::from_value(v.field("buffered")?)?,
            total_observations: u64::from_value(v.field("total_observations")?)?,
        })
    }
}

/// FNV-1a-64 over a byte slice — the trace-file integrity hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Loads a trace from a source, verifying the integrity hash for file
/// sources (`expected_hash` is `None` on first load, `Some` on resume).
/// Returns the trace and the hash that a checkpoint should record.
///
/// # Errors
///
/// Returns a message on I/O failures, parse failures, unknown formats,
/// or a hash mismatch.
pub fn load_source(
    source_path: Option<&str>,
    format: &str,
    synthetic_seed: u64,
    synthetic_span: SimDuration,
    expected_hash: Option<u64>,
) -> Result<(Trace, ClassifierSource), String> {
    match source_path {
        Some(path) => {
            let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let hash = fnv1a64(&bytes);
            if let Some(expected) = expected_hash {
                if hash != expected {
                    return Err(format!(
                        "trace file {path} changed since the checkpoint was written \
                         (hash {hash:#018x}, expected {expected:#018x})"
                    ));
                }
            }
            let trace = match format {
                "jsonl" => Trace::read_jsonl(&bytes[..]),
                "google-csv" => google_csv::read_task_events(&bytes[..]),
                other => return Err(format!("unknown trace format `{other}`")),
            }
            .map_err(|e| format!("cannot parse {path}: {e}"))?;
            let source = ClassifierSource::TraceFile {
                path: path.to_owned(),
                format: format.to_owned(),
                hash,
            };
            Ok((trace, source))
        }
        None => {
            let trace = TraceGenerator::new(
                TraceConfig::evaluation().with_seed(synthetic_seed).with_span(synthetic_span),
            )
            .generate();
            let source = ClassifierSource::Synthetic {
                seed: synthetic_seed,
                span_secs: synthetic_span.as_secs(),
            };
            Ok((trace, source))
        }
    }
}

/// Refits the classifier recorded by a [`ClassifierSource`]
/// (deterministic given the source and calibration).
///
/// # Errors
///
/// Returns a message on source-loading or fit failures.
pub fn refit_classifier(
    source: &ClassifierSource,
    config: &ClassifierConfig,
) -> Result<TaskClassifier, String> {
    let (trace, _) = match source {
        ClassifierSource::TraceFile { path, format, hash } => {
            load_source(Some(path), format, 0, SimDuration::ZERO, Some(*hash))?
        }
        ClassifierSource::Synthetic { seed, span_secs } => {
            load_source(None, "jsonl", *seed, SimDuration::from_secs(*span_secs), None)?
        }
    };
    TaskClassifier::fit(trace.tasks(), config).map_err(|e| format!("classifier fit failed: {e}"))
}

/// Serializes a checkpoint to `<path>.tmp`, fsyncs, and atomically
/// renames it over `path`.
///
/// # Errors
///
/// Propagates I/O failures (the `.tmp` file may remain; it is inert).
pub fn save_atomic(checkpoint: &Checkpoint, path: &Path) -> io::Result<u64> {
    let text = serde_json::to_string(checkpoint)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let tmp: PathBuf = {
        let mut os = path.as_os_str().to_owned();
        os.push(".tmp");
        PathBuf::from(os)
    };
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(text.len() as u64 + 1)
}

/// Loads a checkpoint from disk.
///
/// # Errors
///
/// Propagates I/O failures; malformed or version-mismatched contents
/// yield [`io::ErrorKind::InvalidData`].
pub fn load(path: &Path) -> io::Result<Checkpoint> {
    let text = fs::read_to_string(path)?;
    serde_json::from_str(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a-64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn checkpoint_roundtrip_and_atomic_save() {
        let dir = std::env::temp_dir().join(format!("harmonyd-state-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let checkpoint = Checkpoint {
            version: CHECKPOINT_VERSION,
            config: HarmonyConfig::default(),
            classifier: ClassifierConfig { k_per_group: Some([2, 2, 2]), ..Default::default() },
            // Hash above 2^53 exercises the hex-string encoding.
            source: ClassifierSource::TraceFile {
                path: "/data/trace.jsonl".to_owned(),
                format: "jsonl".to_owned(),
                hash: 0xdead_beef_cafe_f00d,
            },
            catalog: CatalogSpec { name: "table2".to_owned(), divisor: 100 },
            state: OnlineState {
                ticks: 5,
                errors: 1,
                histories: vec![vec![0.5, 0.25], vec![0.0, 1.0]],
                last_plan: None,
                pending_events: Vec::new(),
                lp_basis: None,
            },
            buffered: Vec::new(),
            total_observations: 123,
        };
        let bytes = save_atomic(&checkpoint, &path).unwrap();
        assert!(bytes > 0);
        assert!(!dir.join("ckpt.json.tmp").exists(), "tmp renamed away");
        let back = load(&path).unwrap();
        assert_eq!(back, checkpoint);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_mismatch_rejected() {
        let checkpoint = Checkpoint {
            version: CHECKPOINT_VERSION,
            config: HarmonyConfig::default(),
            classifier: ClassifierConfig::default(),
            source: ClassifierSource::Synthetic { seed: 1, span_secs: 60.0 },
            catalog: CatalogSpec { name: "table2".to_owned(), divisor: 1 },
            state: OnlineState {
                ticks: 0,
                errors: 0,
                histories: Vec::new(),
                last_plan: None,
                pending_events: Vec::new(),
                lp_basis: None,
            },
            buffered: Vec::new(),
            total_observations: 0,
        };
        let mut v = checkpoint.to_value();
        if let Value::Object(map) = &mut v {
            map.insert("version".to_owned(), Value::Number(99.0));
        }
        assert!(Checkpoint::from_value(&v).is_err());
    }

    #[test]
    fn catalog_spec_builds_known_catalogs() {
        let spec = CatalogSpec { name: "table2".to_owned(), divisor: 100 };
        assert_eq!(spec.build().unwrap().len(), 4);
        let spec = CatalogSpec { name: "google10".to_owned(), divisor: 100 };
        assert!(spec.build().unwrap().len() >= 10);
        let spec = CatalogSpec { name: "nope".to_owned(), divisor: 1 };
        assert!(spec.build().is_err());
    }
}

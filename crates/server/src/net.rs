//! TCP server loop for `harmonyd`.
//!
//! Thread-per-connection over std-only primitives: the accept loop
//! spawns a handler per client, handlers share the [`Service`] behind
//! an `Arc<RwLock<_>>`, and an optional ticker thread runs the control
//! loop on a fixed cadence. Graceful shutdown (triggered by a
//! `shutdown` request) stops accepting, unblocks in-flight readers by
//! half-closing their sockets, joins every thread, and writes a final
//! checkpoint.

use std::collections::BTreeMap;
use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread;
use std::time::Duration;

use harmony_telemetry as telemetry;

use crate::protocol::{read_line, write_line, Request, Response};
use crate::service::Service;

/// Hard cap on concurrent client connections; excess connections get an
/// error response and are closed immediately.
pub const MAX_CONNECTIONS: usize = 64;

/// Registry of live connection sockets so shutdown can unblock readers.
type Registry = Arc<Mutex<BTreeMap<u64, TcpStream>>>;

fn lock_write(service: &RwLock<Service>) -> std::sync::RwLockWriteGuard<'_, Service> {
    service.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lock_read(service: &RwLock<Service>) -> std::sync::RwLockReadGuard<'_, Service> {
    service.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs the daemon: accepts connections on `listener`, serves requests
/// against `service`, and — when `tick_period` is set — runs the
/// control loop on that cadence (checkpointing after each tick if a
/// snapshot path is configured). Returns after a graceful shutdown,
/// once every thread is joined and the final checkpoint is on disk.
///
/// # Errors
///
/// Propagates failures to resolve the listener's local address and
/// fatal accept-loop errors.
pub fn serve(
    listener: TcpListener,
    service: Arc<RwLock<Service>>,
    tick_period: Option<Duration>,
) -> io::Result<()> {
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let registry: Registry = Arc::new(Mutex::new(BTreeMap::new()));

    let ticker = tick_period.map(|period| {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        thread::spawn(move || run_ticker(&service, &stop, period))
    });

    let mut handles = Vec::new();
    let mut next_id: u64 = 0;
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        handles.retain(|h: &thread::JoinHandle<()>| !h.is_finished());
        if active.load(Ordering::SeqCst) >= MAX_CONNECTIONS {
            let mut stream = stream;
            let _ = write_line(
                &mut stream,
                &Response::Error { message: "connection limit reached".to_owned() },
            );
            continue;
        }
        let id = next_id;
        next_id += 1;
        if let (Ok(clone), Ok(mut reg)) = (stream.try_clone(), registry.lock()) {
            reg.insert(id, clone);
        }
        active.fetch_add(1, Ordering::SeqCst);
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let active = Arc::clone(&active);
        let registry = Arc::clone(&registry);
        handles.push(thread::spawn(move || {
            handle_connection(stream, &service, &stop, &registry, local);
            if let Ok(mut reg) = registry.lock() {
                reg.remove(&id);
            }
            active.fetch_sub(1, Ordering::SeqCst);
        }));
    }

    for handle in handles {
        let _ = handle.join();
    }
    if let Some(ticker) = ticker {
        let _ = ticker.join();
    }
    if let Err(e) = lock_read(&service).save_checkpoint() {
        eprintln!("harmonyd: final checkpoint failed: {e}");
    }
    Ok(())
}

fn run_ticker(service: &RwLock<Service>, stop: &AtomicBool, period: Duration) {
    let slice = Duration::from_millis(100);
    loop {
        let mut waited = Duration::ZERO;
        while waited < period {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            thread::sleep(slice.min(period - waited));
            waited += slice;
        }
        let mut svc = lock_write(service);
        svc.tick_once();
        if let Err(e) = svc.save_checkpoint() {
            eprintln!("harmonyd: periodic checkpoint failed: {e}");
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &RwLock<Service>,
    stop: &AtomicBool,
    registry: &Registry,
    local: SocketAddr,
) {
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let line = match read_line(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) => break,
            Err(e) => {
                telemetry::global().counter("server.errors").inc();
                let _ = write_line(
                    &mut writer,
                    &Response::Error { message: format!("bad frame: {e}") },
                );
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let request: Request = match serde_json::from_str(&line) {
            Ok(request) => request,
            Err(e) => {
                telemetry::global().counter("server.errors").inc();
                let response = Response::Error { message: format!("bad request: {e}") };
                if write_line(&mut writer, &response).is_err() {
                    break;
                }
                continue;
            }
        };
        // Atomic counters: recorded here, before the service lock, so
        // concurrent connections never serialize on accounting.
        let metrics = telemetry::global();
        metrics.counter("server.requests").inc();
        metrics.counter(&format!("server.requests.{}", request.verb())).inc();
        let is_shutdown = matches!(request, Request::Shutdown);
        let span = metrics.timer("server.request_seconds");
        let response = lock_write(service).handle(request);
        span.stop();
        if matches!(response, Response::Error { .. }) {
            metrics.counter("server.errors").inc();
        }
        if write_line(&mut writer, &response).is_err() {
            break;
        }
        if is_shutdown {
            begin_shutdown(stop, registry, local);
            break;
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// Flips the stop flag, half-closes every registered socket so blocked
/// readers see EOF, and pokes the accept loop awake.
fn begin_shutdown(stop: &AtomicBool, registry: &Registry, local: SocketAddr) {
    stop.store(true, Ordering::SeqCst);
    if let Ok(reg) = registry.lock() {
        for socket in reg.values() {
            let _ = socket.shutdown(Shutdown::Both);
        }
    }
    let _ = TcpStream::connect(local);
}

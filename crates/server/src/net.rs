//! TCP server loop for `harmonyd`.
//!
//! Thread-per-connection over std-only primitives: the accept loop
//! spawns a handler per client, handlers share the [`Service`] behind
//! an `Arc<RwLock<_>>`, and an optional ticker thread runs the control
//! loop on a fixed cadence. Graceful shutdown (triggered by a
//! `shutdown` request) stops accepting, unblocks in-flight readers by
//! half-closing their sockets, joins every thread, and writes a final
//! checkpoint.
//!
//! # Resilience (DESIGN.md §13)
//!
//! * **Connection deadlines** — every socket carries read/write
//!   timeouts, and every frame read races a wall-clock deadline, so a
//!   slow-loris client dribbling bytes (which resets OS-level socket
//!   timeouts on each byte) still cannot pin a worker thread past the
//!   idle budget. Expiry answers a typed `Error{kind: timeout}` and
//!   closes the connection.
//! * **Admission control** — a bounded in-flight gauge sheds expensive
//!   verbs with a typed `Error{kind: overloaded, retry_after_ms}` past
//!   the high-water mark, while `status` / `metrics` (read-lock or
//!   lock-free) and `shutdown` always answer.
//! * **Ticker watchdog** — the background ticker runs under a
//!   supervisor that restarts it with capped exponential backoff after
//!   a panic, and supersedes it (by generation counter) when a tick
//!   overruns a deadline multiple of the control period. std threads
//!   cannot be killed, so a tick wedged *inside* the service lock can
//!   only be superseded once it releases the lock; the chaos hooks
//!   therefore inject stalls outside the lock.

use std::collections::BTreeMap;
use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use harmony_telemetry as telemetry;

use crate::protocol::{read_line_deadline, write_line, MetricsBody, Request, Response};
use crate::service::Service;

/// Default hard cap on concurrent client connections; excess
/// connections get a typed `overloaded` response and are closed
/// immediately.
pub const MAX_CONNECTIONS: usize = 64;

/// Per-connection socket budgets and the admission-control high-water
/// mark.
#[derive(Debug, Clone)]
pub struct ConnectionLimits {
    /// Hard cap on concurrent client connections.
    pub max_connections: usize,
    /// High-water mark for concurrently *executing* expensive verbs;
    /// past it, new expensive requests are shed with `overloaded`.
    pub max_inflight: usize,
    /// Per-frame read deadline, doubling as the connection idle budget.
    pub read_timeout: Duration,
    /// Socket write deadline (a client that stops draining responses
    /// cannot pin a handler).
    pub write_timeout: Duration,
    /// Retry hint attached to every `overloaded` response.
    pub retry_after_ms: u64,
}

impl Default for ConnectionLimits {
    fn default() -> Self {
        ConnectionLimits {
            max_connections: MAX_CONNECTIONS,
            max_inflight: 16,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            retry_after_ms: 100,
        }
    }
}

/// When the watchdog declares the background ticker dead and how it
/// restarts it.
#[derive(Debug, Clone)]
pub struct WatchdogPolicy {
    /// A tick running longer than `deadline_multiple × control period`
    /// is declared wedged and superseded.
    pub deadline_multiple: u32,
    /// First restart delay; doubles per consecutive restart.
    pub backoff_base: Duration,
    /// Ceiling on the restart delay.
    pub backoff_cap: Duration,
}

impl Default for WatchdogPolicy {
    fn default() -> Self {
        WatchdogPolicy {
            deadline_multiple: 4,
            backoff_base: Duration::from_millis(250),
            backoff_cap: Duration::from_secs(5),
        }
    }
}

/// Deterministic fault injection into the ticker — wired to the
/// `--chaos-tick-*` flags, used only by the chaos harness.
#[derive(Debug, Clone, Default)]
pub struct TickerChaos {
    /// Panic on every Nth tick (exercises the restart path).
    pub panic_every: Option<u64>,
    /// Stall on every Nth tick, outside the service lock (exercises the
    /// supersession path).
    pub stall_every: Option<u64>,
    /// How long a chaos stall lasts.
    pub stall: Duration,
}

/// Everything [`serve`] needs beyond the listener and the service.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Background control-loop cadence (`None` = manual `tick` only).
    pub tick_period: Option<Duration>,
    /// Connection and admission limits.
    pub limits: ConnectionLimits,
    /// Ticker watchdog policy.
    pub watchdog: WatchdogPolicy,
    /// Ticker fault injection (defaults to none).
    pub chaos: TickerChaos,
}

/// Registry of live connection sockets so shutdown can unblock readers.
type Registry = Arc<Mutex<BTreeMap<u64, TcpStream>>>;

fn lock_write(service: &RwLock<Service>) -> std::sync::RwLockWriteGuard<'_, Service> {
    service.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lock_read(service: &RwLock<Service>) -> std::sync::RwLockReadGuard<'_, Service> {
    service.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Decrements the in-flight gauge on drop, so a panicking handler can
/// never leak an admission slot and wedge the daemon into permanent
/// shedding.
struct InflightSlot<'a>(&'a AtomicUsize);

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Tries to claim an admission slot. `None` means the gauge is at the
/// high-water mark and the request must be shed with `overloaded`.
fn admit(inflight: &AtomicUsize, max_inflight: usize) -> Option<InflightSlot<'_>> {
    if inflight.fetch_add(1, Ordering::SeqCst) >= max_inflight {
        inflight.fetch_sub(1, Ordering::SeqCst);
        None
    } else {
        Some(InflightSlot(inflight))
    }
}

/// Runs the daemon: accepts connections on `listener`, serves requests
/// against `service` under the limits, watchdog, and (optional) ticker
/// cadence in `options` (checkpointing after each tick if a snapshot
/// path is configured). Returns after a graceful shutdown, once every
/// thread is joined and the final checkpoint is on disk.
///
/// # Errors
///
/// Propagates failures to resolve the listener's local address and
/// fatal accept-loop errors.
pub fn serve(
    listener: TcpListener,
    service: Arc<RwLock<Service>>,
    options: ServeOptions,
) -> io::Result<()> {
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let inflight = Arc::new(AtomicUsize::new(0));
    let registry: Registry = Arc::new(Mutex::new(BTreeMap::new()));

    // Pre-register the resilience counters so `metrics` reports them
    // (as zeros) even before the first shed / timeout / restart.
    let metrics = telemetry::global();
    metrics.counter("server.shed_total").add(0);
    metrics.counter("server.timeout_total").add(0);
    metrics.counter("server.ticker_restarts").add(0);

    let ticker = options.tick_period.map(|period| {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let watchdog = options.watchdog.clone();
        let chaos = options.chaos.clone();
        thread::spawn(move || run_ticker_supervised(&service, &stop, period, &watchdog, &chaos))
    });

    let limits = options.limits;
    let mut handles = Vec::new();
    let mut next_id: u64 = 0;
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        handles.retain(|h: &thread::JoinHandle<()>| !h.is_finished());
        if active.load(Ordering::SeqCst) >= limits.max_connections {
            telemetry::global().counter("server.shed_total").inc();
            let mut stream = stream;
            let _ = write_line(
                &mut stream,
                &Response::overloaded(limits.retry_after_ms, "connection limit reached"),
            );
            continue;
        }
        let id = next_id;
        next_id += 1;
        if let (Ok(clone), Ok(mut reg)) = (stream.try_clone(), registry.lock()) {
            reg.insert(id, clone);
        }
        active.fetch_add(1, Ordering::SeqCst);
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let active = Arc::clone(&active);
        let registry = Arc::clone(&registry);
        let inflight = Arc::clone(&inflight);
        let limits = limits.clone();
        handles.push(thread::spawn(move || {
            handle_connection(stream, &service, &stop, &registry, local, &limits, &inflight);
            if let Ok(mut reg) = registry.lock() {
                reg.remove(&id);
            }
            active.fetch_sub(1, Ordering::SeqCst);
        }));
    }

    for handle in handles {
        let _ = handle.join();
    }
    if let Some(ticker) = ticker {
        let _ = ticker.join();
    }
    // Render under the read lock, write after releasing it: no thread
    // is still running here, but the final checkpoint follows the same
    // no-I/O-under-the-lock discipline as every other save.
    let save = lock_read(&service).pending_checkpoint();
    if let Some(save) = save {
        if let Err(e) = save.commit() {
            eprintln!("harmonyd: final checkpoint failed: {e}");
        }
    }
    Ok(())
}

/// Shared heartbeat between ticker incarnations and their supervisor.
/// Incarnations are identified by `generation`; bumping it supersedes
/// the current incarnation (it exits at its next check instead of
/// ticking again).
struct TickerShared {
    epoch: Instant,
    generation: AtomicU64,
    /// Milliseconds since `epoch` at which the in-progress tick started,
    /// or [`HEARTBEAT_IDLE`] between ticks.
    tick_started_ms: AtomicU64,
    /// Lifetime tick serial shared across incarnations, so chaos
    /// schedules (`panic_every`, `stall_every`) keep firing on the same
    /// cadence across restarts.
    serial: AtomicU64,
}

const HEARTBEAT_IDLE: u64 = u64::MAX;

fn run_ticker_supervised(
    service: &Arc<RwLock<Service>>,
    stop: &Arc<AtomicBool>,
    period: Duration,
    watchdog: &WatchdogPolicy,
    chaos: &TickerChaos,
) {
    let shared = Arc::new(TickerShared {
        epoch: Instant::now(),
        generation: AtomicU64::new(0),
        tick_started_ms: AtomicU64::new(HEARTBEAT_IDLE),
        serial: AtomicU64::new(0),
    });
    let deadline_ms = period
        .saturating_mul(watchdog.deadline_multiple.max(1))
        .as_millis() as u64;
    let mut restarts: u64 = 0;
    let mut handle = spawn_incarnation(service, stop, &shared, 0, period, chaos);
    loop {
        thread::sleep(Duration::from_millis(25));
        if stop.load(Ordering::SeqCst) {
            // Incarnations poll the stop flag between sleep slices, so
            // this join is prompt.
            let _ = handle.join();
            return;
        }
        if handle.is_finished() {
            let why = match handle.join() {
                // The current incarnation exits cleanly only on stop.
                Ok(Ok(())) => return,
                Ok(Err(message)) => message,
                Err(_) => "ticker thread died without a panic message".to_owned(),
            };
            restarts += 1;
            note_restart(service, &why);
            backoff_sleep(stop, backoff_delay(watchdog, restarts));
            if stop.load(Ordering::SeqCst) {
                return;
            }
            shared.tick_started_ms.store(HEARTBEAT_IDLE, Ordering::SeqCst);
            let generation = shared.generation.fetch_add(1, Ordering::SeqCst) + 1;
            handle = spawn_incarnation(service, stop, &shared, generation, period, chaos);
            continue;
        }
        let started = shared.tick_started_ms.load(Ordering::SeqCst);
        if started != HEARTBEAT_IDLE {
            let now = shared.epoch.elapsed().as_millis() as u64;
            if now.saturating_sub(started) > deadline_ms {
                // Supersede the wedged incarnation: bump the generation
                // so it exits when (if) it comes back, detach its
                // handle, and start a fresh one. A tick wedged while
                // holding the service lock is only fully displaced once
                // it releases the lock — std cannot kill a thread.
                let why = format!(
                    "tick exceeded {}x the control period; superseding the wedged ticker",
                    watchdog.deadline_multiple
                );
                let generation = shared.generation.fetch_add(1, Ordering::SeqCst) + 1;
                shared.tick_started_ms.store(HEARTBEAT_IDLE, Ordering::SeqCst);
                restarts += 1;
                note_restart(service, &why);
                backoff_sleep(stop, backoff_delay(watchdog, restarts));
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                handle = spawn_incarnation(service, stop, &shared, generation, period, chaos);
            }
        }
    }
}

/// Capped exponential backoff: `base × 2^(restarts−1)`, clamped to the
/// policy cap.
fn backoff_delay(watchdog: &WatchdogPolicy, restarts: u64) -> Duration {
    let exponent = restarts.saturating_sub(1).min(10) as u32;
    watchdog
        .backoff_base
        .saturating_mul(1u32 << exponent)
        .min(watchdog.backoff_cap)
}

fn backoff_sleep(stop: &AtomicBool, delay: Duration) {
    let slice = Duration::from_millis(25);
    let mut waited = Duration::ZERO;
    while waited < delay && !stop.load(Ordering::SeqCst) {
        let step = slice.min(delay - waited);
        thread::sleep(step);
        waited += step;
    }
}

/// Counts a ticker restart and records it on the service for `status`.
/// Uses `try_write`, never `write`: a wedged tick may still hold the
/// write lock, and the watchdog must never block behind it.
fn note_restart(service: &RwLock<Service>, why: &str) {
    telemetry::global().counter("server.ticker_restarts").inc();
    eprintln!("harmonyd: ticker restart: {why}");
    match service.try_write() {
        Ok(mut svc) => svc.note_ticker_restart(why),
        Err(std::sync::TryLockError::Poisoned(poisoned)) => {
            poisoned.into_inner().note_ticker_restart(why);
        }
        Err(std::sync::TryLockError::WouldBlock) => {}
    }
}

fn spawn_incarnation(
    service: &Arc<RwLock<Service>>,
    stop: &Arc<AtomicBool>,
    shared: &Arc<TickerShared>,
    generation: u64,
    period: Duration,
    chaos: &TickerChaos,
) -> thread::JoinHandle<Result<(), String>> {
    let service = Arc::clone(service);
    let stop = Arc::clone(stop);
    let shared = Arc::clone(shared);
    let chaos = chaos.clone();
    thread::spawn(move || run_ticker(&service, &stop, &shared, generation, period, &chaos))
}

fn run_ticker(
    service: &RwLock<Service>,
    stop: &AtomicBool,
    shared: &TickerShared,
    generation: u64,
    period: Duration,
    chaos: &TickerChaos,
) -> Result<(), String> {
    let slice = Duration::from_millis(50);
    let superseded = || shared.generation.load(Ordering::SeqCst) != generation;
    loop {
        let mut waited = Duration::ZERO;
        while waited < period {
            if stop.load(Ordering::SeqCst) || superseded() {
                return Ok(());
            }
            let step = slice.min(period - waited);
            thread::sleep(step);
            waited += step;
        }
        let serial = shared.serial.fetch_add(1, Ordering::SeqCst) + 1;
        if superseded() {
            return Ok(());
        }
        // Heartbeat writes are generation-gated so a superseded
        // incarnation can never clobber its successor's heartbeat.
        shared
            .tick_started_ms
            .store(shared.epoch.elapsed().as_millis() as u64, Ordering::SeqCst);
        if let Some(every) = chaos.stall_every {
            if every > 0 && serial.is_multiple_of(every) {
                // Chaos stalls run OUTSIDE the service lock: the
                // watchdog supersedes a stalled tick, but std offers no
                // way to revoke a lock a truly wedged tick holds.
                let mut stalled = Duration::ZERO;
                while stalled < chaos.stall && !stop.load(Ordering::SeqCst) && !superseded() {
                    thread::sleep(Duration::from_millis(10));
                    stalled += Duration::from_millis(10);
                }
            }
        }
        if stop.load(Ordering::SeqCst) || superseded() {
            return Ok(());
        }
        let panic_now =
            chaos.panic_every.is_some_and(|every| every > 0 && serial.is_multiple_of(every));
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            if panic_now {
                panic!("chaos: injected tick panic #{serial}");
            }
            // Tick and render the checkpoint under the write lock;
            // commit the file write only after the guard drops, so a
            // slow disk never serializes request handlers behind it.
            let save = {
                let mut svc = lock_write(service);
                svc.tick_once();
                svc.pending_checkpoint()
            };
            if let Some(save) = save {
                if let Err(e) = save.commit() {
                    eprintln!("harmonyd: periodic checkpoint failed: {e}");
                }
            }
        }));
        if shared.generation.load(Ordering::SeqCst) == generation {
            shared.tick_started_ms.store(HEARTBEAT_IDLE, Ordering::SeqCst);
        }
        if let Err(payload) = outcome {
            return Err(panic_message(payload.as_ref()));
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "ticker panicked".to_owned()
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &RwLock<Service>,
    stop: &AtomicBool,
    registry: &Registry,
    local: SocketAddr,
    limits: &ConnectionLimits,
    inflight: &AtomicUsize,
) {
    // Socket-level deadlines back up the per-frame deadline: a client
    // that goes fully silent trips the OS timeout, while one that
    // dribbles bytes (resetting the OS timer each byte) trips the frame
    // deadline between chunks.
    let _ = stream.set_read_timeout(Some(limits.read_timeout));
    let _ = stream.set_write_timeout(Some(limits.write_timeout));
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let frame_deadline = Instant::now() + limits.read_timeout;
        let line = match read_line_deadline(&mut reader, frame_deadline) {
            Ok(Some(line)) => line,
            Ok(None) => break,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                telemetry::global().counter("server.timeout_total").inc();
                let _ = write_line(&mut writer, &Response::timeout(e.to_string()));
                break;
            }
            Err(e) => {
                telemetry::global().counter("server.errors").inc();
                let _ = write_line(&mut writer, &Response::bad_request(format!("bad frame: {e}")));
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let request: Request = match serde_json::from_str(&line) {
            Ok(request) => request,
            Err(e) => {
                telemetry::global().counter("server.errors").inc();
                let response = Response::bad_request(format!("bad request: {e}"));
                if write_line(&mut writer, &response).is_err() {
                    break;
                }
                continue;
            }
        };
        // Atomic counters: recorded here, before the service lock, so
        // concurrent connections never serialize on accounting.
        let metrics = telemetry::global();
        metrics.counter("server.requests").inc();
        metrics.counter(&format!("server.requests.{}", request.verb())).inc();
        let is_shutdown = matches!(request, Request::Shutdown);
        let span = metrics.timer("server.request_seconds");
        let response = match request {
            // Cheap verbs answer even while the daemon sheds load:
            // `metrics` never touches the service lock, `status` only
            // takes the read lock, and `shutdown` must always land.
            Request::Metrics => Response::Metrics(MetricsBody::from(&metrics.snapshot())),
            Request::Status => Response::Status(lock_read(service).status_body()),
            Request::Shutdown => {
                let (response, save) = lock_write(service).handle_deferred(Request::Shutdown);
                commit_outside_lock(response, save)
            }
            request => match admit(inflight, limits.max_inflight) {
                None => {
                    metrics.counter("server.shed_total").inc();
                    Response::overloaded(
                        limits.retry_after_ms,
                        format!(
                            "daemon at capacity ({} requests in flight)",
                            limits.max_inflight
                        ),
                    )
                }
                Some(_slot) => {
                    // The write guard is a temporary: it drops at the
                    // end of this statement, before the checkpoint (if
                    // any) is committed to disk.
                    let (response, save) = lock_write(service).handle_deferred(request);
                    commit_outside_lock(response, save)
                }
            },
        };
        span.stop();
        if matches!(response, Response::Error { .. }) {
            metrics.counter("server.errors").inc();
        }
        if write_line(&mut writer, &response).is_err() {
            break;
        }
        if is_shutdown {
            begin_shutdown(stop, registry, local);
            break;
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// Commits a deferred checkpoint (after the service guard has already
/// dropped — the guard is a temporary in the caller's statement) and
/// folds any write failure into the response.
fn commit_outside_lock(
    response: Response,
    save: Option<crate::service::PendingSave>,
) -> Response {
    match save {
        Some(save) => save.commit_into(response),
        None => response,
    }
}

/// Flips the stop flag, half-closes every registered socket so blocked
/// readers see EOF, and pokes the accept loop awake.
fn begin_shutdown(stop: &AtomicBool, registry: &Registry, local: SocketAddr) {
    stop.store(true, Ordering::SeqCst);
    // Snapshot the sockets under the registry lock, half-close them
    // after releasing it: shutdown() is syscall-cheap but still I/O,
    // and connection handlers take this lock on every connect/drop.
    let sockets: Vec<TcpStream> = match registry.lock() {
        Ok(reg) => reg.values().filter_map(|s| s.try_clone().ok()).collect(),
        Err(_) => Vec::new(),
    };
    for socket in &sockets {
        let _ = socket.shutdown(Shutdown::Both);
    }
    let _ = TcpStream::connect(local);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let policy = WatchdogPolicy {
            deadline_multiple: 4,
            backoff_base: Duration::from_millis(250),
            backoff_cap: Duration::from_secs(5),
        };
        assert_eq!(backoff_delay(&policy, 1), Duration::from_millis(250));
        assert_eq!(backoff_delay(&policy, 2), Duration::from_millis(500));
        assert_eq!(backoff_delay(&policy, 3), Duration::from_millis(1000));
        assert_eq!(backoff_delay(&policy, 6), Duration::from_secs(5), "capped");
        assert_eq!(backoff_delay(&policy, 60), Duration::from_secs(5), "exponent clamped");
    }

    #[test]
    fn panic_payloads_become_messages() {
        let boxed: Box<dyn std::any::Any + Send> = Box::new("static str panic");
        assert_eq!(panic_message(boxed.as_ref()), "static str panic");
        let boxed: Box<dyn std::any::Any + Send> = Box::new("owned".to_owned());
        assert_eq!(panic_message(boxed.as_ref()), "owned");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(17u32);
        assert_eq!(panic_message(boxed.as_ref()), "ticker panicked");
    }

    #[test]
    fn admission_sheds_at_the_high_water_mark_and_recovers() {
        let gauge = AtomicUsize::new(0);
        let first = admit(&gauge, 1).expect("first request admitted");
        assert!(admit(&gauge, 1).is_none(), "second concurrent request shed");
        drop(first);
        assert!(admit(&gauge, 1).is_some(), "slot freed on drop");
        assert_eq!(gauge.load(Ordering::SeqCst), 0, "rejected admits never leak");
    }

    #[test]
    fn default_limits_are_sane() {
        let limits = ConnectionLimits::default();
        assert_eq!(limits.max_connections, MAX_CONNECTIONS);
        assert!(limits.max_inflight >= 1);
        assert!(limits.read_timeout > Duration::ZERO);
        let options = ServeOptions::default();
        assert!(options.tick_period.is_none());
        assert!(options.chaos.panic_every.is_none());
    }
}

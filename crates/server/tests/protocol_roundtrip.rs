//! Property tests: every wire message round-trips through its JSON line
//! encoding — `parse(render(msg)) == msg` for all request and response
//! variants, with arbitrary payloads.

use harmony::monitor::ClassForecast;
use harmony::rounding::IntegerPlan;
use harmony_model::{
    JobId, Priority, Resources, SchedulingClass, SimDuration, SimTime, Task, TaskId,
};
use harmony_server::protocol::{
    ErrorKind, HistogramBody, MetricsBody, Request, Response, StatusBody,
};
use harmony_sim::{DegradationEvent, DegradationKind, ForecastTier};
use proptest::prelude::*;

fn arb_task() -> impl Strategy<Value = Task> {
    (
        (0u64..1 << 32, 0u64..1 << 32),
        (0.0f64..1e6, 0.0f64..1e5),
        (0.0f64..1.0, 0.0f64..1.0),
        (0u8..12, 0u8..4),
    )
        .prop_map(|((id, job), (arrival, duration), (cpu, mem), (priority, sched))| Task {
            id: TaskId(id),
            job: JobId(job),
            arrival: SimTime::from_secs(arrival),
            duration: SimDuration::from_secs(duration),
            demand: Resources::new(cpu, mem),
            priority: Priority::new(priority).expect("in range"),
            sched_class: SchedulingClass::new(sched).expect("in range"),
        })
}

fn arb_plan() -> impl Strategy<Value = IntegerPlan> {
    (1usize..4, 1usize..4).prop_flat_map(|(types, classes)| {
        (
            prop::collection::vec(0usize..50, types),
            prop::collection::vec(prop::collection::vec(0usize..20, classes), types),
        )
            .prop_map(|(machines, quotas)| IntegerPlan { machines, quotas })
    })
}

fn arb_tier() -> impl Strategy<Value = ForecastTier> {
    prop::sample::select(vec![
        ForecastTier::Arima,
        ForecastTier::MovingAverage,
        ForecastTier::LastObservation,
    ])
}

fn arb_string() -> impl Strategy<Value = String> {
    (
        prop::sample::select(vec![
            "",
            "ARIMA refused to converge",
            "line\nbreak \"quoted\" \\slash",
            "unicode: héterogénéité ⚙",
            "tab\tand control\u{1}",
        ]),
        0u64..1000,
    )
        .prop_map(|(base, n)| format!("{base}#{n}"))
}

fn arb_degradation() -> impl Strategy<Value = DegradationEvent> {
    (
        0.0f64..1e6,
        (0usize..8, arb_tier(), 0usize..4),
        arb_string(),
    )
        .prop_map(|(at, (class, tier, pick), detail)| {
            let kind = match pick {
                0 => DegradationKind::ForecastFallback { class, tier },
                1 => DegradationKind::LpReusedPreviousPlan,
                2 => DegradationKind::LpGreedyFallback,
                _ => DegradationKind::ControlHold,
            };
            DegradationEvent { at: SimTime::from_secs(at), kind, detail }
        })
}

fn arb_forecast() -> impl Strategy<Value = ClassForecast> {
    (
        prop::collection::vec(0.0f64..10.0, 1..6),
        arb_tier(),
        (any::<bool>(), arb_string()),
    )
        .prop_map(|(rates, tier, (degraded, why))| ClassForecast {
            rates,
            tier,
            degraded: degraded.then_some(why),
        })
}

fn arb_status() -> impl Strategy<Value = StatusBody> {
    (
        (0u64..1 << 32, 0.0f64..1e9, 0usize..100, 0usize..10_000),
        (0u64..1 << 40, 1usize..20, 1usize..11, 0usize..100_000),
        (0usize..50, any::<bool>(), any::<bool>(), arb_string()),
        (0u64..100, any::<bool>(), arb_string()),
    )
        .prop_map(
            |(
                (ticks, now_secs, errors, buffered),
                (total_observations, n_classes, machine_types, total_machines),
                (pending_events, has_plan, has_path, path),
                (ticker_restarts, has_ticker_error, ticker_error),
            )| StatusBody {
                ticks,
                now_secs,
                errors,
                buffered,
                total_observations,
                n_classes,
                machine_types,
                total_machines,
                pending_events,
                has_plan,
                snapshot_path: has_path.then_some(path),
                ticker_restarts,
                ticker_last_error: has_ticker_error.then_some(ticker_error),
            },
        )
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0usize..9,
        prop::collection::vec(arb_task(), 0..4),
        (any::<bool>(), 1usize..50),
    )
        .prop_map(|(pick, tasks, (some_horizon, horizon))| match pick {
            0 => Request::SubmitObservations { tasks },
            1 => Request::GetPlan,
            2 => Request::GetForecast { horizon: some_horizon.then_some(horizon) },
            3 => Request::Status,
            4 => Request::Tick,
            5 => Request::DrainEvents,
            6 => Request::Snapshot,
            7 => Request::Metrics,
            _ => Request::Shutdown,
        })
}

fn arb_histogram() -> impl Strategy<Value = HistogramBody> {
    (
        (arb_string(), 0u64..1 << 32, 0.0f64..1e6),
        (0.0f64..1e3, 0.0f64..1e3, 0.0f64..1e3),
        1usize..6,
    )
        .prop_flat_map(|((name, count, sum), (mean, p50, p99), n_bounds)| {
            (
                prop::collection::vec(0.0f64..100.0, n_bounds),
                prop::collection::vec(0u64..1 << 20, n_bounds + 1),
            )
                .prop_map(move |(mut bounds, buckets)| {
                    bounds.sort_by(f64::total_cmp);
                    HistogramBody {
                        name: name.clone(),
                        count,
                        sum,
                        mean,
                        p50,
                        p99,
                        bounds,
                        buckets,
                    }
                })
        })
}

fn arb_metrics() -> impl Strategy<Value = MetricsBody> {
    (
        prop::collection::vec((arb_string(), 0u64..1 << 40), 0..5),
        prop::collection::vec((arb_string(), 0.0f64..1e9), 0..5),
        prop::collection::vec(arb_histogram(), 0..3),
    )
        .prop_map(|(counters, gauges, histograms)| MetricsBody {
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            histograms,
        })
}

fn arb_error_kind() -> impl Strategy<Value = ErrorKind> {
    (0usize..4, 0u64..100_000).prop_map(|(pick, retry)| match pick {
        0 => ErrorKind::BadRequest,
        1 => ErrorKind::Timeout,
        2 => ErrorKind::Overloaded { retry_after_ms: retry },
        _ => ErrorKind::Internal,
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        (0usize..10, (arb_string(), arb_error_kind()), arb_status()),
        (0u64..1 << 32, any::<bool>(), arb_plan()),
        (1usize..50, prop::collection::vec(arb_forecast(), 0..4)),
        (prop::collection::vec(arb_degradation(), 0..4), 0u64..1 << 32),
        arb_metrics(),
    )
        .prop_map(
            |(
                (pick, (text, kind), status),
                (tick, has_plan, plan),
                (horizon, classes),
                (events, bytes),
                metrics,
            )| match pick {
                0 => Response::Error { kind, message: text },
                1 => Response::Submitted { buffered: horizon, total: tick },
                2 => Response::Plan { tick, plan: has_plan.then_some(plan) },
                3 => Response::Forecast { horizon, classes },
                4 => Response::Status(status),
                5 => Response::Ticked { tick, plan },
                6 => Response::Events { events },
                7 => Response::Snapshotted { path: text, bytes },
                8 => Response::Metrics(metrics),
                _ => Response::ShuttingDown,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn requests_roundtrip(request in arb_request()) {
        let text = serde_json::to_string(&request).expect("render");
        prop_assert!(!text.contains('\n'), "one line: {text}");
        let back: Request = serde_json::from_str(&text).expect("parse");
        prop_assert_eq!(back, request);
    }

    #[test]
    fn responses_roundtrip(response in arb_response()) {
        let text = serde_json::to_string(&response).expect("render");
        prop_assert!(!text.contains('\n'), "one line: {text}");
        let back: Response = serde_json::from_str(&text).expect("parse");
        prop_assert_eq!(back, response);
    }

    #[test]
    fn responses_carry_the_ok_discriminator(response in arb_response()) {
        let text = serde_json::to_string(&response).expect("render");
        match response {
            Response::Error { .. } => prop_assert!(text.contains("\"ok\":false"), "{text}"),
            _ => prop_assert!(text.contains("\"ok\":true"), "{text}"),
        }
    }

    #[test]
    fn framed_messages_survive_the_wire(request in arb_request()) {
        let mut wire = Vec::new();
        harmony_server::protocol::write_line(&mut wire, &request).expect("frame");
        let mut reader = std::io::BufReader::new(&wire[..]);
        let line = harmony_server::protocol::read_line(&mut reader)
            .expect("read")
            .expect("one line");
        let back: Request = serde_json::from_str(&line).expect("parse");
        prop_assert_eq!(back, request);
    }
}

//! Shared harness for the `harmonyd` integration tests: boots the real
//! daemon binary on an ephemeral port, hands out connected clients, and
//! provides the deterministic observation workload every test drives.

#![allow(dead_code)] // each test binary uses a different subset

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use harmony_model::Task;
use harmony_server::Client;
use harmony_trace::{TraceConfig, TraceGenerator};

/// The synthetic workload every daemon fits its classifier from.
pub const SEED: &str = "33";
pub const SPAN_HOURS: &str = "2";

pub struct Daemon {
    child: Child,
    pub addr: SocketAddr,
}

impl Daemon {
    /// Boots `harmonyd` on an ephemeral port and parses the bound
    /// address from its stdout banner.
    pub fn spawn(extra: &[&str]) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_harmonyd"));
        cmd.args([
            "--listen",
            "127.0.0.1:0",
            "--synthetic-seed",
            SEED,
            "--synthetic-span-hours",
            SPAN_HOURS,
            "--scale",
            "100",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
        let mut child = cmd.spawn().expect("spawn harmonyd");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("daemon printed a banner")
            .expect("banner readable");
        let addr = banner
            .strip_prefix("harmonyd listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
            .parse()
            .expect("parseable address");
        Daemon { child, addr }
    }

    pub fn client(&self) -> Client {
        Client::connect(self.addr).expect("connect to daemon")
    }

    /// SIGKILL — no shutdown handshake, no final checkpoint.
    pub fn kill(mut self) {
        self.child.kill().expect("kill daemon");
        self.child.wait().expect("reap daemon");
    }

    /// Waits for a voluntary exit and asserts it was clean.
    pub fn wait_clean(mut self) {
        let status = self.child.wait().expect("reap daemon");
        assert!(status.success(), "daemon exited with {status}");
    }
}

pub fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("harmonyd-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Three batches of observations, the same for every daemon in a test.
pub fn observation_chunks() -> Vec<Vec<Task>> {
    let trace = TraceGenerator::new(TraceConfig::small().with_seed(77)).generate();
    let tasks: Vec<Task> = trace.tasks().iter().take(240).cloned().collect();
    tasks.chunks(80).map(<[Task]>::to_vec).collect()
}

pub fn assert_no_tmp_files(dir: &Path) {
    let leftovers: Vec<_> = std::fs::read_dir(dir)
        .expect("read temp dir")
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "leftover checkpoint temp files: {leftovers:?}");
}

//! End-to-end tests: boot the real `harmonyd` binary on an ephemeral
//! port, drive it through the client library, kill it without warning,
//! and verify that `--resume` picks the session back up with the exact
//! same provisioning plans an uninterrupted daemon would have produced.

mod util;

use std::path::PathBuf;

use harmony::rounding::IntegerPlan;
use util::{assert_no_tmp_files, observation_chunks, temp_dir, Daemon};

#[test]
fn scripted_session_covers_every_verb() {
    let dir = temp_dir("session");
    let snapshot = dir.join("session.ckpt.json");
    let daemon = Daemon::spawn(&["--snapshot", snapshot.to_str().expect("utf-8 path")]);
    let mut client = daemon.client();

    let status = client.status().expect("status");
    assert_eq!(status.ticks, 0);
    assert!(!status.has_plan);
    assert!(status.n_classes > 0);

    let chunks = observation_chunks();
    let (buffered, total) = client.submit(chunks[0].clone()).expect("submit");
    assert_eq!(buffered, chunks[0].len());
    assert_eq!(total, chunks[0].len() as u64);

    let (tick, plan) = client.tick().expect("tick");
    assert_eq!(tick, 1);
    assert!(plan.machines.iter().sum::<usize>() > 0, "plan powers machines on");

    let (tick, fetched) = client.get_plan().expect("get-plan");
    assert_eq!(tick, 1);
    assert_eq!(fetched.as_ref(), Some(&plan), "get-plan returns the tick's plan");

    let forecast = client.get_forecast(Some(3)).expect("get-forecast");
    assert_eq!(forecast.len(), status.n_classes);
    assert!(forecast.iter().all(|f| f.rates.len() == 3));

    let _events = client.drain_events().expect("drain-events");

    let (path, bytes) = client.snapshot().expect("snapshot");
    assert_eq!(PathBuf::from(path), snapshot);
    assert!(bytes > 0);
    assert!(snapshot.exists(), "checkpoint on disk");

    client.shutdown().expect("shutdown");
    daemon.wait_clean();
    assert_no_tmp_files(&dir);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn kill_nine_then_resume_reproduces_the_plan_sequence() {
    let chunks = observation_chunks();

    // Reference run: one daemon, never interrupted.
    let reference = Daemon::spawn(&[]);
    let mut client = reference.client();
    let mut expected: Vec<IntegerPlan> = Vec::new();
    for chunk in &chunks {
        client.submit(chunk.clone()).expect("submit");
        let (_, plan) = client.tick().expect("tick");
        expected.push(plan);
    }
    client.shutdown().expect("shutdown");
    reference.wait_clean();

    // Interrupted run: same session, but SIGKILLed after two ticks.
    let dir = temp_dir("resume");
    let snapshot = dir.join("resume.ckpt.json");
    let snapshot_arg = snapshot.to_str().expect("utf-8 path");
    let victim = Daemon::spawn(&["--snapshot", snapshot_arg]);
    let mut client = victim.client();
    let mut actual: Vec<IntegerPlan> = Vec::new();
    for chunk in &chunks[..2] {
        client.submit(chunk.clone()).expect("submit");
        let (_, plan) = client.tick().expect("tick");
        actual.push(plan);
    }
    victim.kill();
    assert!(snapshot.exists(), "auto-checkpoint survived the kill");

    let resumed = Daemon::spawn(&["--resume", snapshot_arg]);
    let mut client = resumed.client();
    let status = client.status().expect("status");
    assert_eq!(status.ticks, 2, "resume restores the tick counter");
    assert_eq!(
        status.total_observations,
        (chunks[0].len() + chunks[1].len()) as u64,
        "resume restores lifetime counters"
    );
    let (_, plan) = client.get_plan().expect("get-plan");
    assert_eq!(plan.as_ref(), Some(&actual[1]), "resume restores the last plan");

    for chunk in &chunks[2..] {
        client.submit(chunk.clone()).expect("submit");
        let (_, plan) = client.tick().expect("tick");
        actual.push(plan);
    }
    client.shutdown().expect("shutdown");
    resumed.wait_clean();

    assert_eq!(actual, expected, "interrupted + resumed run must match the reference run");
    assert_no_tmp_files(&dir);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

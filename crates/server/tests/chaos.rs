//! Chaos e2e: the daemon under a seeded fault storm.
//!
//! Three attack surfaces, each replayed for three seeds:
//!
//! 1. **Network** — a connection flood through the chaos proxy
//!    (dribbled bytes, torn frames, mid-frame disconnects) plus a
//!    deterministic slow-loris client. The daemon must shed with typed
//!    `overloaded`, time out with typed `timeout`, and keep answering
//!    `status`/`metrics` throughout.
//! 2. **Filesystem** — kill-9 cycles with a bit-flipped and a truncated
//!    checkpoint between them. The daemon must fall back to the
//!    surviving generation and reproduce the exact plan sequence an
//!    uninterrupted daemon computes.
//! 3. **Control loop** — chaos-injected tick panics and stalls. The
//!    watchdog must restart/supersede the ticker and surface the
//!    restarts via `status` and `server.ticker_restarts`.
//!
//! Assertions are timing-independent (typed errors, counters, plan
//! equality) per the determinism contract in DESIGN.md §13.

mod util;

use std::io::Write;
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use harmony::rounding::IntegerPlan;
use harmony_server::chaos::{flood, ChaosConfig, ChaosProxy};
use harmony_server::protocol::{read_line, ErrorKind, Request, Response};
use harmony_server::state;
use harmony_server::Client;
use util::{assert_no_tmp_files, observation_chunks, temp_dir, Daemon};

const SEEDS: [u64; 3] = [1, 2, 3];

fn counter(client: &mut Client, name: &str) -> u64 {
    match client.request(&Request::Metrics).expect("metrics") {
        Response::Metrics(body) => body.counters.get(name).copied().unwrap_or(0),
        other => panic!("expected Metrics, got {other:?}"),
    }
}

/// Deterministic slow-loris: sends half a frame, then goes silent past
/// the daemon's read deadline. The daemon must answer a typed timeout
/// (or close) rather than pin the worker thread.
fn slow_loris(addr: std::net::SocketAddr) -> Option<Response> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    stream.write_all(b"{\"verb\":\"sta").expect("half frame");
    thread::sleep(Duration::from_millis(700));
    let clone = stream.try_clone().expect("clone");
    let mut reader = std::io::BufReader::new(clone);
    match read_line(&mut reader) {
        Ok(Some(line)) => Some(serde_json::from_str(&line).expect("typed response")),
        Ok(None) | Err(_) => None,
    }
}

#[test]
fn flood_and_deadlines_keep_the_daemon_responsive() {
    for &seed in &SEEDS {
        // Tight limits so the chaos actually bites: 400ms frame
        // deadline, one expensive request in flight at a time.
        let daemon = Daemon::spawn(&["--read-timeout-ms", "400", "--max-inflight", "1"]);

        // Storm the daemon directly: every connection must get a typed
        // answer — shed, error, or result — never a hang.
        let report = flood(daemon.addr, 48, seed);
        assert_eq!(report.errors, 0, "seed {seed}: {report:?}");
        assert_eq!(
            report.responded, report.connected,
            "seed {seed}: every surviving connection gets a response: {report:?}"
        );

        // Same storm through the fault-injecting proxy: torn frames and
        // dribbles now hit the daemon; it must survive (responses are
        // best-effort — cut connections legitimately get none).
        let mut proxy =
            ChaosProxy::start(daemon.addr, ChaosConfig::seeded(seed)).expect("proxy");
        let _ = flood(proxy.addr(), 24, seed.wrapping_add(100));
        proxy.stop();

        // Deterministic timeout: half a frame, then silence past the
        // 400ms deadline.
        match slow_loris(daemon.addr) {
            Some(Response::Error { kind: ErrorKind::Timeout, .. }) | None => {}
            Some(other) => panic!("seed {seed}: expected typed timeout, got {other:?}"),
        }

        // After all of that, the daemon still answers cheap verbs and
        // the timeout counter moved.
        let mut client = daemon.client();
        let status = client.status().expect("status after chaos");
        assert_eq!(status.ticks, 0);
        assert!(counter(&mut client, "server.timeout_total") >= 1, "seed {seed}");
        client.shutdown().expect("clean shutdown after chaos");
        daemon.wait_clean();
    }
}

/// Overload shedding, deterministically: fill the connection cap with
/// live clients (each proven admitted by a `status` round-trip), then
/// the next connection MUST be shed at accept with a typed `overloaded`
/// carrying the configured retry hint. No timing races — the cap is a
/// hard count, not a window. (The in-flight high-water mark shares the
/// same shed path; its arithmetic is unit-tested in `net::admit`.)
#[test]
fn connection_cap_sheds_with_a_typed_overloaded_response() {
    let daemon = Daemon::spawn(&[
        "--max-connections",
        "2",
        "--retry-after-ms",
        "250",
        "--read-timeout-ms",
        "5000",
    ]);

    let mut holders = vec![daemon.client(), daemon.client()];
    for holder in &mut holders {
        holder.status().expect("holder connection is live");
    }

    let stream = TcpStream::connect(daemon.addr).expect("connect past the cap");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut reader = std::io::BufReader::new(stream);
    let line = read_line(&mut reader)
        .expect("read shed response")
        .expect("daemon answers before closing a shed connection");
    let response: Response = serde_json::from_str(&line).expect("typed response");
    match response {
        Response::Error { kind: ErrorKind::Overloaded { retry_after_ms }, message } => {
            assert_eq!(retry_after_ms, 250, "retry hint is the configured one");
            assert!(message.contains("connection limit"), "got {message:?}");
        }
        other => panic!("expected typed overloaded, got {other:?}"),
    }

    assert!(counter(&mut holders[0], "server.shed_total") >= 1);
    holders[0].shutdown().expect("shutdown");
    daemon.wait_clean();
}

#[test]
fn checkpoint_torture_resumes_the_exact_plan_sequence() {
    let chunks = observation_chunks();

    // Reference: one uninterrupted daemon.
    let reference = Daemon::spawn(&[]);
    let mut client = reference.client();
    let mut expected: Vec<IntegerPlan> = Vec::new();
    for chunk in &chunks {
        client.submit(chunk.clone()).expect("submit");
        let (_, plan) = client.tick().expect("tick");
        expected.push(plan);
    }
    client.shutdown().expect("shutdown");
    reference.wait_clean();

    for &seed in &SEEDS {
        let dir = temp_dir(&format!("torture-{seed}"));
        let snapshot = dir.join("torture.ckpt.json");
        let snapshot_arg = snapshot.to_str().expect("utf-8 path");

        // Phase A: drive two periods while read-only chaos traffic
        // hammers the daemon through the proxy, then kill -9.
        let victim = Daemon::spawn(&["--snapshot", snapshot_arg]);
        let mut proxy =
            ChaosProxy::start(victim.addr, ChaosConfig::seeded(seed)).expect("proxy");
        let proxy_addr = proxy.addr();
        let noise = thread::spawn(move || flood(proxy_addr, 12, seed));
        let mut client = victim.client();
        let mut actual: Vec<IntegerPlan> = Vec::new();
        for chunk in &chunks[..2] {
            client.submit(chunk.clone()).expect("submit");
            let (_, plan) = client.tick().expect("tick");
            actual.push(plan);
        }
        let _ = noise.join();
        proxy.stop();
        victim.kill();

        // Torture 1: flip a bit in the primary. The CRC must reject it
        // and the resume must fall back to the previous generation
        // (tick 1, chunk 1 still buffered) and re-derive plan 2.
        state::flip_bit(&snapshot, 200, 3).expect("flip a checkpoint bit");
        let resumed = Daemon::spawn(&["--resume", snapshot_arg]);
        let mut client = resumed.client();
        let status = client.status().expect("status");
        assert_eq!(
            status.ticks, 1,
            "seed {seed}: bit-flipped primary must fall back to generation .1"
        );
        assert_eq!(status.buffered, chunks[1].len(), "generation still buffers chunk 1");
        let (_, plan) = client.tick().expect("re-tick");
        assert_eq!(plan, expected[1], "seed {seed}: replayed tick matches the reference");
        actual[1] = plan;

        // Phase B: buffer chunk 2 (autosave), then kill -9 again.
        client.submit(chunks[2].clone()).expect("submit");
        resumed.kill();

        // Torture 2: truncate the primary mid-payload. Fallback lands
        // on the post-tick-2 generation (empty buffer), so we re-submit
        // and re-tick to reproduce plan 3.
        let len = std::fs::metadata(&snapshot).expect("checkpoint metadata").len();
        state::truncate_to(&snapshot, len / 2).expect("truncate checkpoint");
        let resumed = Daemon::spawn(&["--resume", snapshot_arg]);
        let mut client = resumed.client();
        let status = client.status().expect("status");
        assert_eq!(status.ticks, 2, "seed {seed}: truncated primary must fall back");
        assert_eq!(status.buffered, 0, "fallback generation has an empty buffer");
        client.submit(chunks[2].clone()).expect("re-submit");
        let (_, plan) = client.tick().expect("tick");
        actual.push(plan);

        client.shutdown().expect("shutdown");
        resumed.wait_clean();

        assert_eq!(
            actual, expected,
            "seed {seed}: torture cycle must reproduce the reference plan sequence"
        );
        assert_no_tmp_files(&dir);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

fn wait_for_restarts(daemon: &Daemon, want: u64, deadline: Duration) -> u64 {
    let start = Instant::now();
    let mut seen = 0;
    while start.elapsed() < deadline {
        let mut client = daemon.client();
        seen = counter(&mut client, "server.ticker_restarts");
        if seen >= want {
            return seen;
        }
        thread::sleep(Duration::from_millis(100));
    }
    seen
}

#[test]
fn watchdog_restarts_a_panicking_ticker() {
    let daemon = Daemon::spawn(&[
        "--tick-secs",
        "0.05",
        "--chaos-tick-panic-every",
        "2",
    ]);
    let restarts = wait_for_restarts(&daemon, 2, Duration::from_secs(30));
    assert!(restarts >= 2, "watchdog must keep restarting the ticker, saw {restarts}");

    let mut client = daemon.client();
    let status = client.status().expect("status");
    assert!(status.ticker_restarts >= 1, "restarts surface in status");
    let why = status.ticker_last_error.expect("last error surfaces in status");
    assert!(why.contains("chaos: injected tick panic"), "got {why:?}");
    assert!(status.ticks >= 1, "non-panicking ticks still run");

    client.shutdown().expect("shutdown");
    daemon.wait_clean();
}

#[test]
fn watchdog_supersedes_a_stalled_ticker() {
    let daemon = Daemon::spawn(&[
        "--tick-secs",
        "0.1",
        "--chaos-tick-stall-every",
        "2",
        "--chaos-tick-stall-ms",
        "2000",
        "--watchdog-deadline-multiple",
        "3",
    ]);
    // Deadline = 0.1s × 3 = 300ms < the 2s stall, so the watchdog must
    // declare the tick wedged and supersede it.
    let restarts = wait_for_restarts(&daemon, 1, Duration::from_secs(30));
    assert!(restarts >= 1, "watchdog must supersede a stalled tick, saw {restarts}");

    let mut client = daemon.client();
    let status = client.status().expect("status");
    let why = status.ticker_last_error.expect("last error surfaces in status");
    assert!(why.contains("superseding"), "got {why:?}");

    client.shutdown().expect("shutdown");
    daemon.wait_clean();
}

//! Section-III style trace analysis: generate a synthetic
//! Google-cluster-like workload and characterize its heterogeneity.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example trace_analysis
//! ```

use harmony::classify::{ClassifierConfig, Regime, TaskClassifier};
use harmony_model::{PriorityGroup, SimDuration};
use harmony_trace::stats::{arrival_rate_series, duration_cdf_by_group};
use harmony_trace::{TraceConfig, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = TraceConfig::google_like().with_span(SimDuration::from_days(2.0));
    let trace = TraceGenerator::new(config).generate();

    println!("== workload overview ==");
    println!("tasks: {}  span: {:.0} h", trace.len(), trace.span().as_hours());
    let counts = trace.group_counts();
    for g in PriorityGroup::ALL {
        println!(
            "  {:<11} {:>7} tasks ({:.0}%)",
            g.to_string(),
            counts[g.index()],
            counts[g.index()] as f64 / trace.len() as f64 * 100.0
        );
    }

    println!("\n== durations (Fig. 6 shape) ==");
    let cdfs = duration_cdf_by_group(&trace);
    for g in PriorityGroup::ALL {
        let cdf = &cdfs[g.index()];
        println!(
            "  {:<11} p50 = {:>7.0}s  p90 = {:>8.0}s  max = {:>6.1} days  <=100s: {:.0}%",
            g.to_string(),
            cdf.quantile(0.5),
            cdf.quantile(0.9),
            cdf.quantile(1.0) / 86_400.0,
            cdf.fraction_at_most(100.0) * 100.0
        );
    }

    println!("\n== arrival rates (Fig. 19 shape) ==");
    let rates = arrival_rate_series(&trace, SimDuration::from_hours(1.0));
    for g in PriorityGroup::ALL {
        let s = &rates[g.index()];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let peak = s.iter().cloned().fold(0.0, f64::max);
        println!("  {:<11} mean {:.2} tasks/s, peak {:.2} tasks/s", g.to_string(), mean, peak);
    }

    println!("\n== task classes (Section V) ==");
    let classifier = TaskClassifier::fit(trace.tasks(), &ClassifierConfig::default())?;
    println!("  {} classes; initial-label error {:.1}%", classifier.classes().len(),
        classifier.initial_label_error(trace.tasks()) * 100.0);
    for class in classifier.classes() {
        println!(
            "  {:<9} {:<11} {:<5} n={:<7} cpu {:.4}±{:.4}  mem {:.4}±{:.4}  dur {:>7.0}s",
            format!("{}", class.id),
            class.group.to_string(),
            match class.regime {
                Regime::Short => "short",
                Regime::Long => "long",
            },
            class.stats.count,
            class.stats.mean_demand.cpu,
            class.stats.std_demand.cpu,
            class.stats.mean_demand.mem,
            class.stats.std_demand.mem,
            class.stats.mean_duration.as_secs(),
        );
    }
    Ok(())
}

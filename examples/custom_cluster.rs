//! Bring your own hardware: define a custom machine catalog, plug it
//! into the simulator, and let HARMONY (CBP mode — stock scheduler)
//! provision it.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example custom_cluster
//! ```

use harmony::classify::ClassifierConfig;
use harmony::pipeline::{run_variant, Variant};
use harmony::HarmonyConfig;
use harmony_model::{
    MachineCatalog, MachineType, MachineTypeId, PowerModel, Resources, SimDuration,
};
use harmony_trace::{TraceConfig, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-tier cluster: ARM-style low-power nodes plus dual-socket
    // workhorses. Capacities are normalized to the workhorse.
    let catalog = MachineCatalog::new(vec![
        MachineType {
            id: MachineTypeId(0),
            name: "low-power-node".into(),
            platform_id: 10,
            capacity: Resources::new(0.2, 0.15),
            count: 120,
            power: PowerModel::new(18.0, Resources::new(45.0, 8.0)),
            boot_time: SimDuration::from_secs(30.0),
            switching_cost: 0.0005,
            accel_capacity: 0.0,
        },
        MachineType {
            id: MachineTypeId(1),
            name: "workhorse".into(),
            platform_id: 11,
            capacity: Resources::new(1.0, 1.0),
            count: 24,
            power: PowerModel::new(160.0, Resources::new(320.0, 55.0)),
            boot_time: SimDuration::from_secs(150.0),
            switching_cost: 0.005,
            accel_capacity: 0.0,
        },
    ])?;
    println!(
        "cluster: {} machines, capacity {}",
        catalog.total_machines(),
        catalog.total_capacity()
    );

    let trace = TraceGenerator::new(TraceConfig::small().with_seed(99)).generate();
    let config = HarmonyConfig {
        control_period: SimDuration::from_mins(10.0),
        horizon: 3,
        ..Default::default()
    };
    let report = run_variant(
        &trace,
        &catalog,
        &config,
        &ClassifierConfig::default(),
        Variant::Cbp,
    )?;

    println!("completed: {} of {} tasks", report.tasks_completed, trace.len());
    println!("energy: {:.2} kWh (${:.2})", report.total_energy_wh / 1000.0, report.energy_cost_dollars);
    println!("machine switches: {}", report.switch_count);
    println!("mean scheduling delay: {:.1} s", report.delay_stats_overall().mean);
    println!("unschedulable tasks (too big for any node): {}", report.tasks_unschedulable);

    println!("\nactive machines over time:");
    for point in report.series.iter().step_by(2) {
        let bars: String = "#".repeat(point.active_per_type.iter().sum::<usize>() / 2);
        println!(
            "  {:>5.1}h [{:>3} low, {:>2} big] {}",
            point.time.as_hours(),
            point.active_per_type[0],
            point.active_per_type[1],
            bars
        );
    }
    Ok(())
}

//! Capacity planning without a simulator in the loop: given per-class
//! arrival rates and SLOs, compute container counts (Eq. 1–3) and solve
//! one CBS-RELAX instance (Eq. 14–16) to get a machine plan.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use harmony::cbs::{solve_cbs_relax, CbsInputs};
use harmony::HarmonyConfig;
use harmony_model::{EnergyPrice, MachineCatalog, Resources, SimTime};
use harmony_queueing::{ContainerSizer, MgnQueue};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = MachineCatalog::table2().scaled(20);
    let config = HarmonyConfig::default();

    // Three hand-described task classes: web serving (small, long-lived,
    // tight SLO), batch analytics (medium), and a memory-hungry cache.
    struct Class {
        name: &'static str,
        rate_per_sec: f64,
        mean_duration_secs: f64,
        cv2: f64,
        mean: Resources,
        std: Resources,
        slo_delay_secs: f64,
        utility_per_hour: f64,
    }
    let classes = [
        Class {
            name: "web-serving",
            rate_per_sec: 0.50,
            mean_duration_secs: 3600.0,
            cv2: 1.0,
            mean: Resources::new(0.02, 0.015),
            std: Resources::new(0.004, 0.003),
            slo_delay_secs: 10.0,
            utility_per_hour: 0.30,
        },
        Class {
            name: "batch",
            rate_per_sec: 2.00,
            mean_duration_secs: 300.0,
            cv2: 2.0,
            mean: Resources::new(0.05, 0.02),
            std: Resources::new(0.015, 0.006),
            slo_delay_secs: 300.0,
            utility_per_hour: 0.03,
        },
        Class {
            name: "cache",
            rate_per_sec: 0.05,
            mean_duration_secs: 7200.0,
            cv2: 0.5,
            mean: Resources::new(0.03, 0.25),
            std: Resources::new(0.008, 0.05),
            slo_delay_secs: 60.0,
            utility_per_hour: 0.10,
        },
    ];

    // Step 1: container sizes from the Gaussian multiplexing bound.
    let sizer = ContainerSizer::new(config.epsilon)?;
    println!("container sizing (epsilon = {}, Z = {:.2}):", config.epsilon, sizer.z());
    let mut sizes = Vec::new();
    let mut counts = Vec::new();
    for c in &classes {
        let size = (c.mean + c.std * sizer.z()).clamp_components(1.0);
        // Step 2: container counts from the M/G/N delay bound.
        let queue = MgnQueue::new(c.rate_per_sec, 1.0 / c.mean_duration_secs, c.cv2)?;
        let n = queue.min_servers(c.slo_delay_secs)?;
        println!(
            "  {:<12} size = {}  containers = {}  (offered load {:.1})",
            c.name,
            size,
            n,
            queue.offered_load()
        );
        sizes.push(size);
        counts.push(n as f64);
    }

    // Step 3: one CBS-RELAX solve over a 4-period horizon.
    let utility: Vec<f64> = classes.iter().map(|c| c.utility_per_hour).collect();
    let demand = vec![counts.clone(); config.horizon];
    let plan = solve_cbs_relax(
        &CbsInputs {
            catalog: &catalog,
            container_sizes: &sizes,
            utility_per_hour: &utility,
            demand: &demand,
            initial_active: &vec![0.0; catalog.len()],
            price: &EnergyPrice::default(),
            now: SimTime::ZERO,
        },
        &config,
    )?;

    println!("\nmachine plan (first period):");
    for (m, ty) in catalog.iter().enumerate() {
        println!(
            "  {:<22} z = {:>7.2} of {}",
            ty.name,
            plan.first_step_machines()[m],
            ty.count
        );
    }
    println!("objective over horizon: ${:.2}", plan.objective);
    Ok(())
}

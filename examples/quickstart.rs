//! Quickstart: generate a workload, run HARMONY against the
//! heterogeneity-oblivious baseline, and compare energy and delay.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use harmony::classify::ClassifierConfig;
use harmony::pipeline::run_comparison;
use harmony::HarmonyConfig;
use harmony_model::{MachineCatalog, SimDuration};
use harmony_sim::{FirstFit, Simulation, SimulationConfig};
use harmony_trace::{TraceConfig, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A two-hour synthetic Google-like trace (Section III shapes).
    let trace = TraceGenerator::new(TraceConfig::small().with_seed(7)).generate();
    println!(
        "trace: {} tasks over {:.1} h (gratis/other/production = {:?})",
        trace.len(),
        trace.span().as_hours(),
        trace.group_counts()
    );

    // 2. A 1/50-scale Table II cluster: 140 R210s, 30 R515s, 20 DL385s,
    //    10 DL585s.
    let catalog = MachineCatalog::table2().scaled(50);
    println!(
        "cluster: {} machines, total capacity {}",
        catalog.total_machines(),
        catalog.total_capacity()
    );

    // 3. Run the paper's three controllers over the same trace.
    let config = HarmonyConfig {
        control_period: SimDuration::from_mins(10.0),
        horizon: 3,
        ..Default::default()
    };
    let results = run_comparison(&trace, &catalog, &config, &ClassifierConfig::default())?;

    // Reference: the cluster as the paper found it — everything on.
    let always_on = Simulation::new(
        SimulationConfig::new(catalog.clone()).all_machines_on(),
        &trace,
        Box::new(FirstFit),
    )
    .run();

    println!(
        "\n{:<10} {:>12} {:>10} {:>12} {:>10}",
        "approach", "energy_kWh", "switches", "mean_delay_s", "completed"
    );
    println!(
        "{:<10} {:>12.2} {:>10} {:>12.1} {:>10}",
        "always-on",
        always_on.total_energy_wh / 1000.0,
        always_on.switch_count,
        always_on.delay_stats_overall().mean,
        always_on.tasks_completed,
    );
    for (variant, report) in &results {
        println!(
            "{:<10} {:>12.2} {:>10} {:>12.1} {:>10}",
            variant.name(),
            report.total_energy_wh / 1000.0,
            report.switch_count,
            report.delay_stats_overall().mean,
            report.tasks_completed,
        );
    }

    for (variant, report) in &results {
        println!(
            "{} saves {:.0}% vs always-on",
            variant.name(),
            (1.0 - report.total_energy_wh / always_on.total_energy_wh) * 100.0
        );
    }
    println!(
        "\n(two hours is a smoke test; the paper-scale comparison between the \
         three controllers is `HARMONY_SCALE=full cargo run --release -p \
         harmony-bench --bin fig21_26_controllers`)"
    );
    Ok(())
}

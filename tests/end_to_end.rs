//! End-to-end integration: trace generation → classification →
//! controllers → simulation, across all workspace crates.

use harmony::classify::ClassifierConfig;
use harmony::pipeline::{run_comparison, run_variant, Variant};
use harmony::HarmonyConfig;
use harmony_model::{MachineCatalog, PriorityGroup, SimDuration};
use harmony_sim::{FirstFit, Simulation, SimulationConfig};
use harmony_trace::{TraceConfig, TraceGenerator};

fn tiny_setup() -> (harmony_trace::Trace, MachineCatalog, HarmonyConfig, ClassifierConfig) {
    let config = TraceConfig::small().with_span(SimDuration::from_hours(1.0)).with_seed(5);
    let trace = TraceGenerator::new(config).generate();
    let catalog = MachineCatalog::table2().scaled(100);
    let harmony_config = HarmonyConfig {
        control_period: SimDuration::from_mins(15.0),
        horizon: 2,
        ..Default::default()
    };
    let classifier_config =
        ClassifierConfig { k_per_group: Some([3, 3, 3]), ..Default::default() };
    (trace, catalog, harmony_config, classifier_config)
}

#[test]
fn all_three_variants_conserve_tasks() {
    let (trace, catalog, config, cc) = tiny_setup();
    for variant in Variant::ALL {
        let report = run_variant(&trace, &catalog, &config, &cc, variant).unwrap();
        assert_eq!(
            report.tasks_completed
                + report.tasks_running_at_end
                + report.tasks_pending_at_end
                + report.tasks_unschedulable,
            trace.len(),
            "conservation violated for {}",
            variant.name()
        );
        assert!(report.tasks_completed > 0, "{} completed nothing", variant.name());
        assert!(report.total_energy_wh > 0.0);
        assert!(report.switch_count > 0, "{} never provisioned", variant.name());
    }
}

#[test]
fn dynamic_provisioning_beats_always_on_energy() {
    let (trace, catalog, config, cc) = tiny_setup();
    // Always-on reference: every machine on for the whole run.
    let always_on = Simulation::new(
        SimulationConfig::new(catalog.clone()).all_machines_on(),
        &trace,
        Box::new(FirstFit),
    )
    .run();
    for variant in Variant::ALL {
        let report = run_variant(&trace, &catalog, &config, &cc, variant).unwrap();
        assert!(
            report.total_energy_wh < always_on.total_energy_wh,
            "{} ({} Wh) should beat always-on ({} Wh)",
            variant.name(),
            report.total_energy_wh,
            always_on.total_energy_wh
        );
    }
}

#[test]
fn dcp_variants_land_in_the_same_energy_band() {
    // Fig. 26's ordering (CBS < CBP < baseline) emerges at paper scale
    // (see EXPERIMENTS.md); a one-hour smoke trace only supports a
    // coarser claim: every DCP variant stays within a moderate factor
    // of the leanest one, far below always-on.
    let (trace, catalog, config, cc) = tiny_setup();
    let results = run_comparison(&trace, &catalog, &config, &cc).unwrap();
    let energy = |v: Variant| {
        results.iter().find(|(var, _)| *var == v).map(|(_, r)| r.total_energy_wh).unwrap()
    };
    let lean = Variant::ALL.iter().map(|&v| energy(v)).fold(f64::INFINITY, f64::min);
    for v in Variant::ALL {
        assert!(
            energy(v) <= lean * 1.6,
            "{} ({:.0} Wh) is out of band vs leanest ({lean:.0} Wh)",
            v.name(),
            energy(v)
        );
    }
}

#[test]
fn delays_recorded_per_group() {
    let (trace, catalog, config, cc) = tiny_setup();
    let report = run_variant(&trace, &catalog, &config, &cc, Variant::Baseline).unwrap();
    let mut groups_seen = 0;
    for group in PriorityGroup::ALL {
        let stats = report.delay_stats(group);
        if stats.count > 0 {
            groups_seen += 1;
            assert!(stats.mean >= 0.0);
            assert!(stats.p50 <= stats.p90 && stats.p90 <= stats.p99);
            assert!(stats.p99 <= stats.max);
        }
    }
    assert_eq!(groups_seen, 3, "all priority groups should schedule tasks");
}

#[test]
fn reports_are_deterministic() {
    let (trace, catalog, config, cc) = tiny_setup();
    let a = run_variant(&trace, &catalog, &config, &cc, Variant::Cbp).unwrap();
    let b = run_variant(&trace, &catalog, &config, &cc, Variant::Cbp).unwrap();
    assert_eq!(a.tasks_completed, b.tasks_completed);
    assert_eq!(a.switch_count, b.switch_count);
    assert!((a.total_energy_wh - b.total_energy_wh).abs() < 1e-9);
}

#[test]
fn trace_io_roundtrip_preserves_simulation_outcome() {
    let (trace, catalog, config, cc) = tiny_setup();
    let mut buf = Vec::new();
    trace.write_jsonl(&mut buf).unwrap();
    let reloaded = harmony_trace::Trace::read_jsonl(buf.as_slice()).unwrap();
    let a = run_variant(&trace, &catalog, &config, &cc, Variant::Baseline).unwrap();
    let b = run_variant(&reloaded, &catalog, &config, &cc, Variant::Baseline).unwrap();
    assert_eq!(a.tasks_completed, b.tasks_completed);
    assert!((a.total_energy_wh - b.total_energy_wh).abs() < 1e-9);
}

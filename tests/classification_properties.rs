//! Property-based tests for the two-step task classifier.

use harmony::classify::{ClassifierConfig, Regime, TaskClassifier};
use harmony_model::{PriorityGroup, SimDuration};
use harmony_trace::{TraceConfig, TraceGenerator};
use proptest::prelude::*;

fn fitted(seed: u64) -> (TaskClassifier, harmony_trace::Trace) {
    let config = TraceConfig::small().with_span(SimDuration::from_mins(45.0)).with_seed(seed);
    let trace = TraceGenerator::new(config).generate();
    let classifier = TaskClassifier::fit(
        trace.tasks(),
        &ClassifierConfig { k_per_group: Some([3, 3, 3]), ..Default::default() },
    )
    .expect("fit succeeds on generated traces");
    (classifier, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every task's run-time label stays within its own priority group,
    /// for any trace seed.
    #[test]
    fn labels_stay_within_priority_group(seed in 0u64..500) {
        let (classifier, trace) = fitted(seed);
        for task in trace.tasks().iter().take(300) {
            let label = classifier.class(classifier.initial_label(task));
            prop_assert_eq!(label.group, task.priority.group());
            let oracle = classifier.class(classifier.oracle_label(task));
            prop_assert_eq!(oracle.group, task.priority.group());
        }
    }

    /// Relabeling is monotone: once a task is labeled long, more running
    /// time never flips it back to short.
    #[test]
    fn relabeling_is_monotone(seed in 0u64..500) {
        let (classifier, trace) = fitted(seed);
        for task in trace.tasks().iter().take(100) {
            let mut was_long = false;
            for secs in [1.0, 60.0, 600.0, 3600.0, 86_400.0] {
                let label = classifier.class(classifier.relabel(task, SimDuration::from_secs(secs)));
                let is_long = label.regime == Regime::Long;
                prop_assert!(!was_long || is_long, "long → short flip at {secs}s");
                was_long = is_long;
            }
        }
    }

    /// Class statistics are internally consistent: counts sum to the
    /// trace size and every centroid is a valid resource point.
    #[test]
    fn class_stats_consistent(seed in 0u64..500) {
        let (classifier, trace) = fitted(seed);
        let total: usize = classifier.classes().iter().map(|c| c.stats.count).sum();
        prop_assert_eq!(total, trace.len());
        for class in classifier.classes() {
            prop_assert!(class.stats.mean_demand.is_valid());
            prop_assert!(class.stats.std_demand.is_valid());
            prop_assert!(class.stats.cv2_duration >= 0.0);
            prop_assert!(class.stats.mean_duration.as_secs() >= 0.0);
        }
    }

    /// The initial-label error equals the fraction of tasks whose oracle
    /// label is a long sub-class (everything starts short).
    #[test]
    fn initial_error_equals_long_mass(seed in 0u64..500) {
        let (classifier, trace) = fitted(seed);
        let err = classifier.initial_label_error(trace.tasks());
        let long_mass = trace
            .tasks()
            .iter()
            .filter(|t| {
                classifier.class(classifier.oracle_label(t)).regime == Regime::Long
            })
            .count() as f64
            / trace.len() as f64;
        prop_assert!((err - long_mass).abs() < 1e-12);
        // The design claim: this error is a minority of tasks.
        prop_assert!(err < 0.5, "err = {err}");
    }
}

#[test]
fn deterministic_fit_for_fixed_seed() {
    let (a, trace) = fitted(42);
    let b = TaskClassifier::fit(
        trace.tasks(),
        &ClassifierConfig { k_per_group: Some([3, 3, 3]), ..Default::default() },
    )
    .unwrap();
    assert_eq!(a.classes().len(), b.classes().len());
    for (ca, cb) in a.classes().iter().zip(b.classes()) {
        assert_eq!(ca, cb);
    }
}

#[test]
fn every_group_has_both_regimes_on_bimodal_data() {
    let (classifier, _) = fitted(7);
    for group in PriorityGroup::ALL {
        let has_short = classifier
            .classes()
            .iter()
            .any(|c| c.group == group && c.regime == Regime::Short);
        assert!(has_short, "{group} must have a short class");
    }
    // Long classes exist somewhere (bimodal durations).
    assert!(classifier.classes().iter().any(|c| c.regime == Regime::Long));
}

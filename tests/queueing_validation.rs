//! Validates the M/G/N scheduling-delay model (Eq. 1–2) against an
//! independent discrete-event queue simulation.

use harmony_queueing::{erlang_c, MgnQueue};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Event-driven M/M/N queue simulation measuring the mean wait, written
/// independently of the analytic code under test.
fn simulate_mmn(lambda: f64, mu: f64, servers: usize, n_customers: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let exp = |rate: f64, rng: &mut StdRng| -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / rate
    };
    // Server free times.
    let mut free_at = vec![0.0f64; servers];
    let mut t = 0.0;
    let mut total_wait = 0.0;
    let warmup = n_customers / 5;
    let mut counted = 0usize;
    for i in 0..n_customers {
        t += exp(lambda, &mut rng);
        // Earliest-available server.
        let (idx, &earliest) = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        let start = earliest.max(t);
        let service = exp(mu, &mut rng);
        free_at[idx] = start + service;
        if i >= warmup {
            total_wait += start - t;
            counted += 1;
        }
    }
    total_wait / counted as f64
}

#[test]
fn analytic_wait_matches_simulation_mm3() {
    let lambda = 2.0;
    let mu = 1.0;
    let n = 3;
    let queue = MgnQueue::new(lambda, mu, 1.0).unwrap();
    let analytic = queue.mean_wait(n).unwrap();
    let simulated = simulate_mmn(lambda, mu, n, 300_000, 1);
    let rel = (analytic - simulated).abs() / analytic;
    assert!(
        rel < 0.05,
        "M/M/3: analytic {analytic:.4} vs simulated {simulated:.4} (rel {rel:.3})"
    );
}

#[test]
fn analytic_wait_matches_simulation_heavier_load() {
    let lambda = 8.5;
    let mu = 1.0;
    let n = 10;
    let queue = MgnQueue::new(lambda, mu, 1.0).unwrap();
    let analytic = queue.mean_wait(n).unwrap();
    // Heavy-traffic mean-wait estimates converge slowly (highly
    // autocorrelated waits near saturation), so this case needs a much
    // longer run than the rho=0.67 one above to stay inside tolerance.
    let simulated = simulate_mmn(lambda, mu, n, 4_000_000, 2);
    let rel = (analytic - simulated).abs() / analytic;
    assert!(
        rel < 0.08,
        "M/M/10 @ rho=0.85: analytic {analytic:.4} vs simulated {simulated:.4} (rel {rel:.3})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Erlang-C recursion stays a probability and is monotone in
    /// load for arbitrary parameters.
    #[test]
    fn erlang_c_is_probability(n in 1usize..500, load_frac in 0.01f64..0.99) {
        let a = n as f64 * load_frac;
        let c = erlang_c(n, a).unwrap();
        prop_assert!((0.0..=1.0).contains(&c), "C = {c}");
        // Slightly more load: never less waiting.
        let c2 = erlang_c(n, (a * 1.01).min(n as f64 * 0.995)).unwrap();
        prop_assert!(c2 >= c - 1e-12);
    }

    /// min_servers always returns a count that satisfies the target and
    /// whose predecessor does not.
    #[test]
    fn min_servers_is_minimal(
        lambda in 0.1f64..50.0,
        mean_duration in 1.0f64..1000.0,
        cv2 in 0.0f64..4.0,
        target in 0.1f64..500.0,
    ) {
        let queue = MgnQueue::new(lambda, 1.0 / mean_duration, cv2).unwrap();
        let n = queue.min_servers(target).unwrap();
        prop_assert!(n >= 1);
        prop_assert!(queue.mean_wait(n).unwrap() <= target);
        if n > 1 {
            // Err means unstable with one fewer server — also fine.
            if let Ok(w) = queue.mean_wait(n - 1) {
                prop_assert!(w > target, "n not minimal: wait({}) = {w}", n - 1);
            }
        }
    }

    /// Eq. 1 scales linearly in (1 + CV²)/2 at fixed N.
    #[test]
    fn wait_scales_with_cv2(lambda in 1.0f64..20.0, cv2 in 0.0f64..4.0) {
        let mu = 1.0;
        let n = (lambda.ceil() as usize) + 2;
        let base = MgnQueue::new(lambda, mu, 1.0).unwrap().mean_wait(n).unwrap();
        let general = MgnQueue::new(lambda, mu, cv2).unwrap().mean_wait(n).unwrap();
        let expected = base * (1.0 + cv2) / 2.0;
        prop_assert!((general - expected).abs() < 1e-9 * (1.0 + expected));
    }
}

//! Checkpointed warm-start bases survive serialization and backend
//! changes: `Solution::basis()` must round-trip through the
//! `OnlineState.lp_basis` checkpoint encoding bit-identically and
//! re-install on either simplex backend, and the two backends must
//! agree on CBS-shaped instances — the workload the solver exists for —
//! warm and cold, to 1e-6 relative.

use harmony::cbs::{solve_cbs_relax_warm, CbsInputs};
use harmony::online::OnlineState;
use harmony::{HarmonyConfig, SolverBackend, WarmOutcome};
use harmony_model::{EnergyPrice, MachineCatalog, Resources, SimDuration, SimTime};
use proptest::prelude::*;
use proptest::TestCaseError;

const REL_TOL: f64 = 1e-6;

fn config(horizon: usize, backend: SolverBackend) -> HarmonyConfig {
    HarmonyConfig {
        control_period: SimDuration::from_mins(10.0),
        horizon,
        lp_backend: backend,
        ..Default::default()
    }
}

/// Wraps a basis the way the daemon checkpoints it and pushes it through
/// the full serde path (value tree → JSON text → value tree → state).
fn roundtrip_via_checkpoint(basis: &harmony_lp::Basis) -> harmony_lp::Basis {
    let state = OnlineState {
        ticks: 7,
        errors: 0,
        histories: vec![vec![0.25, 0.5]],
        last_plan: None,
        pending_events: Vec::new(),
        lp_basis: Some(basis.clone()),
        cost_dollars: 1.25,
    };
    let text = serde_json::to_string(&state).expect("checkpoint state serializes");
    let back: OnlineState = serde_json::from_str(&text).expect("checkpoint state deserializes");
    assert_eq!(back, state, "checkpoint round-trip must be bit-identical");
    back.lp_basis.expect("basis survives the round-trip")
}

fn objectives_agree(a: f64, b: f64) -> Result<(), TestCaseError> {
    prop_assert!(
        (a - b).abs() <= REL_TOL * (1.0 + a.abs().max(b.abs())),
        "objectives disagree: {a} vs {b}"
    );
    Ok(())
}

/// `(sizes, utility, demand, demand2, initial)` — the raw ingredients
/// for a pair of CBS scenarios sharing one class catalog.
type Scenario = (Vec<Resources>, Vec<f64>, Vec<Vec<f64>>, Vec<Vec<f64>>, Vec<f64>);

/// Random CBS scenarios with two demand periods of identical structure
/// (strictly positive demand keeps the LP's shape constant, so the
/// second period's solve is warm-startable from the first's basis).
fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (1usize..4, 1usize..4).prop_flat_map(|(n_classes, horizon)| {
        let sizes = proptest::collection::vec(
            (0.01f64..0.4, 0.01f64..0.4).prop_map(|(c, m)| Resources::new(c, m)),
            n_classes,
        );
        let utility = proptest::collection::vec(0.05f64..2.0, n_classes);
        let demand = proptest::collection::vec(
            proptest::collection::vec(0.1f64..40.0, n_classes),
            horizon,
        );
        let demand2 = proptest::collection::vec(
            proptest::collection::vec(0.1f64..40.0, n_classes),
            horizon,
        );
        let initial = proptest::collection::vec(0.0f64..10.0, 4);
        (sizes, utility, demand, demand2, initial)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full deployment story in one property: solve a CBS instance
    /// on both backends (they agree), checkpoint the sparse basis
    /// through `OnlineState` serde (bit-identical), then warm-start the
    /// next period's solve from the restored basis on *both* backends —
    /// what a daemon restarted under a different `--lp-backend` does —
    /// and land on the cold objective as a warm-start hit each time.
    #[test]
    fn cbs_basis_roundtrips_and_warm_starts_both_backends(
        (sizes, utility, demand, demand2, initial) in scenario_strategy()
    ) {
        let catalog = MachineCatalog::table2().scaled(100);
        let initial: Vec<f64> = initial
            .iter()
            .zip(catalog.iter())
            .map(|(v, ty)| v.min(ty.count as f64))
            .collect();
        let price = EnergyPrice::default();
        fn make<'a>(
            catalog: &'a MachineCatalog,
            sizes: &'a [Resources],
            utility: &'a [f64],
            demand: &'a [Vec<f64>],
            initial: &'a [f64],
            price: &'a EnergyPrice,
        ) -> CbsInputs<'a> {
            CbsInputs {
                catalog,
                container_sizes: sizes,
                utility_per_hour: utility,
                demand,
                initial_active: initial,
                price,
                now: SimTime::ZERO,
            }
        }
        let horizon = demand.len();
        let sparse_cfg = config(horizon, SolverBackend::Sparse);
        let dense_cfg = config(horizon, SolverBackend::Dense);

        let sparse = solve_cbs_relax_warm(
            &make(&catalog, &sizes, &utility, &demand, &initial, &price),
            &sparse_cfg,
            None,
        )
        .unwrap();
        let dense = solve_cbs_relax_warm(
            &make(&catalog, &sizes, &utility, &demand, &initial, &price),
            &dense_cfg,
            None,
        )
        .unwrap();
        objectives_agree(sparse.plan.objective, dense.plan.objective)?;
        prop_assert_eq!(sparse.warm_outcome, WarmOutcome::Cold);
        prop_assert!(sparse.lp_vars > 0 && sparse.lp_constraints > 0);
        prop_assert_eq!(sparse.lp_vars, dense.lp_vars);
        prop_assert_eq!(sparse.lp_constraints, dense.lp_constraints);

        let restored = roundtrip_via_checkpoint(&sparse.basis);
        prop_assert_eq!(&restored, &sparse.basis);

        // Next period: same structure, moved demand. Warm from the
        // restored checkpoint basis under each backend.
        let cold2 = solve_cbs_relax_warm(
            &make(&catalog, &sizes, &utility, &demand2, &initial, &price),
            &dense_cfg,
            None,
        )
        .unwrap();
        for cfg in [&sparse_cfg, &dense_cfg] {
            let warm = solve_cbs_relax_warm(
                &make(&catalog, &sizes, &utility, &demand2, &initial, &price),
                cfg,
                Some(&restored),
            )
            .unwrap();
            objectives_agree(warm.plan.objective, cold2.plan.objective)?;
            prop_assert_eq!(warm.warm_outcome, WarmOutcome::Hit);
            prop_assert!(warm.warm_started);
        }
    }
}

/// A basis that kept an artificial variable (redundant equality rows)
/// checkpoints fine but must be *rejected* on re-install — by both
/// backends, classified as a structural fallback, still reaching the
/// optimum.
#[test]
fn redundant_row_basis_survives_checkpoint_but_is_rejected_by_both_backends() {
    use harmony_lp::{Problem, Sense, SimplexOptions};

    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_var("x", 0.0, f64::INFINITY, 2.0);
    let y = p.add_var("y", 0.0, f64::INFINITY, 3.0);
    // The duplicated equality row leaves one artificial basic at zero.
    p.add_eq(vec![(x, 1.0), (y, 1.0)], 4.0);
    p.add_eq(vec![(x, 1.0), (y, 1.0)], 4.0);
    let first = p.solve().unwrap();
    let n_cols = first.basis().num_cols();
    assert!(
        first.basis().columns().iter().any(|&j| j >= n_cols),
        "test premise: an artificial stayed basic"
    );

    let restored = roundtrip_via_checkpoint(first.basis());
    assert_eq!(&restored, first.basis());

    for backend in [SolverBackend::Sparse, SolverBackend::Dense] {
        let options = SimplexOptions { backend, ..SimplexOptions::default() };
        let warm = p.solve_warm_with(&options, Some(&restored)).unwrap();
        assert_eq!(warm.warm_outcome(), WarmOutcome::StructuralFallback, "{backend:?}");
        assert!(!warm.warm_started());
        assert!((warm.objective() - first.objective()).abs() < 1e-9);
    }
}

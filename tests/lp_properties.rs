//! Property-based tests for the simplex solver on random instances.

use harmony_lp::{Problem, Sense};
use proptest::prelude::*;

/// A random bounded-feasible maximization instance: box-bounded
/// variables plus random `≤` rows with non-negative coefficients and
/// non-negative right-hand sides, so the origin is always feasible and
/// the box keeps the optimum finite.
#[derive(Debug, Clone)]
struct Instance {
    n_vars: usize,
    objective: Vec<f64>,
    upper: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (2usize..6, 1usize..5).prop_flat_map(|(n_vars, n_rows)| {
        let obj = proptest::collection::vec(-5.0f64..5.0, n_vars);
        let upper = proptest::collection::vec(0.5f64..10.0, n_vars);
        let rows = proptest::collection::vec(
            (proptest::collection::vec(0.0f64..3.0, n_vars), 0.5f64..20.0),
            n_rows,
        );
        (obj, upper, rows).prop_map(move |(objective, upper, rows)| Instance {
            n_vars,
            objective,
            upper,
            rows,
        })
    })
}

fn solve(inst: &Instance) -> (harmony_lp::Solution, Problem) {
    let mut p = Problem::new(Sense::Maximize);
    let vars: Vec<_> = (0..inst.n_vars)
        .map(|i| p.add_var(format!("x{i}"), 0.0, inst.upper[i], inst.objective[i]))
        .collect();
    for (coeffs, rhs) in &inst.rows {
        let terms: Vec<_> = vars.iter().zip(coeffs).map(|(&v, &c)| (v, c)).collect();
        p.add_le(terms, *rhs);
    }
    let sol = p.solve().expect("box-bounded feasible instance must solve");
    (sol, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The returned point is primal-feasible and its objective matches
    /// the recomputed inner product.
    #[test]
    fn solutions_are_feasible(inst in instance_strategy()) {
        let (sol, _) = solve(&inst);
        let x = sol.values();
        for (i, &v) in x.iter().enumerate() {
            prop_assert!(v >= -1e-7, "x{i} = {v} negative");
            prop_assert!(v <= inst.upper[i] + 1e-7, "x{i} = {v} above bound");
        }
        for (coeffs, rhs) in &inst.rows {
            let lhs: f64 = coeffs.iter().zip(x).map(|(c, v)| c * v).sum();
            prop_assert!(lhs <= rhs + 1e-6, "row violated: {lhs} > {rhs}");
        }
        let obj: f64 = inst.objective.iter().zip(x).map(|(c, v)| c * v).sum();
        prop_assert!((obj - sol.objective()).abs() < 1e-6);
    }

    /// No random feasible point ever beats the simplex optimum.
    #[test]
    fn no_feasible_point_beats_optimum(inst in instance_strategy(), seed in 0u64..1000) {
        let (sol, _) = solve(&inst);
        // Deterministic pseudo-random candidate points, projected into
        // the feasible region by scaling.
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut next = || {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..50 {
            let mut x: Vec<f64> = (0..inst.n_vars).map(|i| next() * inst.upper[i]).collect();
            // Scale down until all rows hold.
            for (coeffs, rhs) in &inst.rows {
                let lhs: f64 = coeffs.iter().zip(&x).map(|(c, v)| c * v).sum();
                if lhs > *rhs {
                    let scale = rhs / lhs;
                    for v in &mut x {
                        *v *= scale;
                    }
                }
            }
            let obj: f64 = inst.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
            prop_assert!(
                obj <= sol.objective() + 1e-6,
                "feasible point {obj} beats 'optimum' {}",
                sol.objective()
            );
        }
    }

    /// Scaling the objective scales the optimum; translating a bound
    /// never increases it beyond the relaxation.
    #[test]
    fn objective_scaling(inst in instance_strategy(), factor in 0.5f64..4.0) {
        let (sol, _) = solve(&inst);
        let mut scaled = inst.clone();
        for c in &mut scaled.objective {
            *c *= factor;
        }
        let (sol2, _) = solve(&scaled);
        prop_assert!((sol2.objective() - factor * sol.objective()).abs() < 1e-5 * (1.0 + sol.objective().abs()));
    }

    /// Adding a redundant row (looser than an existing one) never
    /// changes the optimum.
    #[test]
    fn redundant_rows_are_harmless(inst in instance_strategy()) {
        let (sol, _) = solve(&inst);
        let mut with_redundant = inst.clone();
        if let Some((coeffs, rhs)) = inst.rows.first() {
            with_redundant.rows.push((coeffs.clone(), rhs * 2.0));
        }
        let (sol2, _) = solve(&with_redundant);
        prop_assert!((sol.objective() - sol2.objective()).abs() < 1e-6 * (1.0 + sol.objective().abs()));
    }
}

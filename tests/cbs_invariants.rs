//! Invariants of the CBS-RELAX plan and its rounding, across random
//! demand scenarios.

use harmony::cbs::{solve_cbs_relax, CbsInputs};
use harmony::rounding::{lemma1_holds, round_first_step};
use harmony::HarmonyConfig;
use harmony_model::{EnergyPrice, MachineCatalog, MachineTypeId, Resources, SimDuration, SimTime};
use proptest::prelude::*;

fn config(horizon: usize, omega: f64) -> HarmonyConfig {
    HarmonyConfig {
        control_period: SimDuration::from_mins(10.0),
        horizon,
        omega,
        ..Default::default()
    }
}

fn scenario_strategy() -> impl Strategy<
    Value = (Vec<Resources>, Vec<f64>, Vec<Vec<f64>>, Vec<f64>),
> {
    (1usize..4, 1usize..4).prop_flat_map(|(n_classes, horizon)| {
        let sizes = proptest::collection::vec(
            (0.01f64..0.4, 0.01f64..0.4).prop_map(|(c, m)| Resources::new(c, m)),
            n_classes,
        );
        let utility = proptest::collection::vec(0.05f64..2.0, n_classes);
        let demand = proptest::collection::vec(
            proptest::collection::vec(0.0f64..40.0, n_classes),
            horizon,
        );
        let initial = proptest::collection::vec(0.0f64..10.0, 4);
        (sizes, utility, demand, initial)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every plan respects machine populations, capacity constraints
    /// (with ω), and never serves beyond demand.
    #[test]
    fn plans_are_feasible((sizes, utility, demand, initial) in scenario_strategy()) {
        let catalog = MachineCatalog::table2().scaled(100);
        let cfg = config(demand.len(), 1.1);
        let initial: Vec<f64> = initial
            .iter()
            .zip(catalog.iter())
            .map(|(v, ty)| v.min(ty.count as f64))
            .collect();
        let plan = solve_cbs_relax(
            &CbsInputs {
                catalog: &catalog,
                container_sizes: &sizes,
                utility_per_hour: &utility,
                demand: &demand,
                initial_active: &initial,
                price: &EnergyPrice::default(),
                now: SimTime::ZERO,
            },
            &cfg,
        )
        .unwrap();
        for (t, z_row) in plan.z.iter().enumerate() {
            for (m, &z) in z_row.iter().enumerate() {
                let ty = catalog.machine_type(MachineTypeId(m));
                prop_assert!(z >= -1e-7 && z <= ty.count as f64 + 1e-6, "z[{t}][{m}] = {z}");
                // Capacity per resource with omega.
                for r in 0..harmony_model::NUM_RESOURCES {
                    let used: f64 = (0..sizes.len())
                        .map(|n| cfg.omega * sizes[n][r] * plan.x[t][m][n])
                        .sum();
                    prop_assert!(
                        used <= ty.capacity[r] * z + 1e-5,
                        "capacity violated at t={t} m={m} r={r}: {used} > cap*{z}"
                    );
                }
            }
            // Demand caps.
            for (n, &cap) in demand[t].iter().enumerate() {
                let served: f64 = (0..catalog.len()).map(|m| plan.x[t][m][n]).sum();
                prop_assert!(served <= cap + 1e-5, "overserved class {n} at {t}");
            }
        }
    }

    /// Rounding always yields machine counts within the population and
    /// quotas that First-Fit actually packed.
    #[test]
    fn rounding_is_physical((sizes, utility, demand, initial) in scenario_strategy()) {
        let catalog = MachineCatalog::table2().scaled(100);
        let cfg = config(demand.len(), 1.1);
        let initial: Vec<f64> = initial
            .iter()
            .zip(catalog.iter())
            .map(|(v, ty)| v.min(ty.count as f64))
            .collect();
        let plan = solve_cbs_relax(
            &CbsInputs {
                catalog: &catalog,
                container_sizes: &sizes,
                utility_per_hour: &utility,
                demand: &demand,
                initial_active: &initial,
                price: &EnergyPrice::default(),
                now: SimTime::ZERO,
            },
            &cfg,
        )
        .unwrap();
        let integer = round_first_step(&plan, &catalog, &sizes);
        for (m, &count) in integer.machines.iter().enumerate() {
            prop_assert!(count <= catalog.machine_type(MachineTypeId(m)).count);
        }
        // Quotas are physically packable: replay the packing.
        let packed = harmony::rounding::pack_into_mix(
            &(0..sizes.len()).map(|n| integer.class_quota(n)).collect::<Vec<_>>(),
            &sizes,
            &catalog,
            &integer.machines,
        );
        for n in 0..sizes.len() {
            let replay: usize = packed.iter().map(|p| p[n]).sum();
            prop_assert!(replay >= integer.class_quota(n).min(replay), "packing replay shrank");
        }
    }

    /// Theorem 1's empirical content: the rounded integer plan retains
    /// at least `1/(2|R|)` of the fractional plan's served-container
    /// utility (in practice First-Fit-Decreasing over class totals does
    /// far better; the paper observes the same).
    #[test]
    fn rounding_retains_theorem1_utility_fraction(
        (sizes, utility, demand, initial) in scenario_strategy()
    ) {
        let catalog = MachineCatalog::table2().scaled(100);
        let cfg = config(demand.len(), 1.1);
        let initial: Vec<f64> = initial
            .iter()
            .zip(catalog.iter())
            .map(|(v, ty)| v.min(ty.count as f64))
            .collect();
        let plan = solve_cbs_relax(
            &CbsInputs {
                catalog: &catalog,
                container_sizes: &sizes,
                utility_per_hour: &utility,
                demand: &demand,
                initial_active: &initial,
                price: &EnergyPrice::default(),
                now: SimTime::ZERO,
            },
            &cfg,
        )
        .unwrap();
        let integer = round_first_step(&plan, &catalog, &sizes);
        let frac_utility: f64 = (0..sizes.len())
            .map(|n| {
                let served: f64 = (0..catalog.len()).map(|m| plan.x[0][m][n]).sum();
                served * utility[n]
            })
            .sum();
        let int_utility: f64 = (0..sizes.len())
            .map(|n| integer.class_quota(n) as f64 * utility[n])
            .sum();
        let bound = frac_utility / (2.0 * harmony_model::NUM_RESOURCES as f64);
        prop_assert!(
            int_utility + 1e-6 >= bound,
            "integer utility {int_utility} below Theorem-1 bound {bound}              (fractional {frac_utility})"
        );
    }

    /// Lemma 1 holds on random fractional-feasible single-type packing
    /// instances.
    #[test]
    fn lemma1_randomized(
        sizes in proptest::collection::vec(
            (0.05f64..0.5, 0.05f64..0.5).prop_map(|(c, m)| Resources::new(c, m)),
            1..5,
        ),
        machines in 2usize..12,
        fill in 0.1f64..1.0,
    ) {
        // Build counts whose total volume fits `machines` fractionally.
        let mut counts = vec![0usize; sizes.len()];
        let mut cpu = 0.0;
        let mut mem = 0.0;
        let budget = machines as f64 * fill;
        'outer: loop {
            for (n, s) in sizes.iter().enumerate() {
                if cpu + s.cpu > budget || mem + s.mem > budget {
                    break 'outer;
                }
                counts[n] += 1;
                cpu += s.cpu;
                mem += s.mem;
            }
        }
        prop_assert!(lemma1_holds(&counts, &sizes, Resources::ONE, machines));
    }
}

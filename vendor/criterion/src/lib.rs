//! Offline stand-in for `criterion`.
//!
//! Provides the same authoring surface (`criterion_group!`, benchmark
//! groups, `Bencher::iter`) backed by a plain wall-clock measurement
//! loop: warm up briefly, time a fixed number of samples, report the
//! median per-iteration time to stdout. Good enough to keep `cargo
//! bench` runnable and to catch order-of-magnitude regressions by eye.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// The benchmark driver handed to each `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("group {name}");
        BenchmarkGroup { _criterion: self, name, sample_size }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        bencher.report(&self.name, &id.label());
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.label());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark's name, optionally split into function and parameter.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A two-part id, e.g. `fit_k5/10000`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: Some(parameter.to_string()) }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{p}", self.function),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { function: name.to_owned(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { function: name, parameter: None }
    }
}

/// Times the closure handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine`, once per sample after a short warm-up.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: also sizes an inner batch so fast routines are timed
        // over enough iterations for the clock to resolve.
        let warmup_start = Instant::now();
        let mut batch = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            batch += 1;
        }
        let per_sample = (batch / 20).max(1);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample as u32);
        }
    }

    fn report(&self, group: &str, label: &str) {
        if self.samples.is_empty() {
            println!("  {group}/{label}: no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "  {group}/{label}: median {} (min {}, max {}, {} samples)",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            sorted.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed group functions. In test mode
/// (`cargo test --benches` passes `--test`) the benchmarks are skipped
/// so the compile check stays fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if ::std::env::args().any(|arg| arg == "--test") {
                println!("benchmarks skipped in test mode");
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_bodies() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut runs = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            runs += 1;
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2));
            runs += 1;
        });
        group.finish();
        assert_eq!(runs, 2);
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small API subset it actually uses: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, uniform `gen`/`gen_range`
//! sampling for the primitive types, and a seeded [`rngs::StdRng`].
//!
//! The generators are deterministic and of good statistical quality
//! (xoshiro256** seeded via splitmix64) but are **not** bit-compatible
//! with the upstream crate; all in-repo seeds were chosen against this
//! implementation.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` via splitmix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        Self::from_seed(seed)
    }
}

/// splitmix64: seed expander and fallback generator.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(pub(crate) u64);

impl SplitMix64 {
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A type samplable uniformly over its full (unit, for floats) range via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// A range type usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type (floats land in
    /// `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_are_in_range_and_vary() {
        let mut rng = StdRng::seed_from_u64(1);
        let draws: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        assert!(draws.iter().all(|&v| (0.0..1.0).contains(&v)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2u8..=8);
            assert!((2..=8).contains(&w));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    use super::RngCore;
}

//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this vendored subset models
//! serialization through a JSON-like [`value::Value`] tree: a type
//! serializes by building a `Value` and deserializes by reading one.
//! The derive macros re-exported here are no-ops (see `serde_derive`);
//! the few types the workspace actually round-trips implement the traits
//! by hand.

#![forbid(unsafe_code)]

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{DeError, Value};

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads the value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::new("expected a number"))
    }
}

macro_rules! impl_int_serde {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_f64().ok_or_else(|| DeError::new("expected a number"))?;
                if n.fract() != 0.0 || n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(DeError::new(concat!("expected ", stringify!($t))));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_int_serde!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected a boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_owned())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected a string")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::new("expected an array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

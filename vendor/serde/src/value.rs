//! The JSON-like value tree shared by the vendored `serde` and
//! `serde_json` crates.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A key-sorted object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Looks up a required object field, with a shape error otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] if `self` is not an object or lacks `key`.
    pub fn field(&self, key: &str) -> Result<&Value, DeError> {
        self.get(key).ok_or_else(|| DeError::new(format!("missing field `{key}`")))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(v as f64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

/// A deserialization shape error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError { message: message.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization failed: {}", self.message)
    }
}

impl Error for DeError {}

//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses as a
//! deterministic *sampling* framework: every `proptest!` test runs its
//! body against `cases` independently seeded inputs. There is no
//! shrinking — a failure message reports the per-case seed so the exact
//! input can be replayed by re-running the test.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// The RNG handed to strategies during sampling.
pub type TestRng = StdRng;

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed: the property does not hold.
    Fail(String),
    /// `prop_assume!` rejected the input; resample and try again.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config that runs `cases` accepted samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drives one property through its configured number of cases.
pub struct TestRunner {
    name: &'static str,
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner for the named property.
    pub fn new(name: &'static str, config: ProptestConfig) -> Self {
        TestRunner { name, config }
    }

    /// Runs the property; panics on the first failing case.
    ///
    /// # Panics
    ///
    /// Panics when a case fails or when `prop_assume!` rejects too many
    /// samples in a row.
    pub fn run<F>(self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        // Seeds derive from the test name so distinct properties in one
        // file explore different inputs, yet every run is reproducible.
        let base = fnv1a(self.name.as_bytes());
        let mut accepted = 0u32;
        let mut attempts = 0u64;
        let max_attempts = u64::from(self.config.cases) * 20 + 100;
        while accepted < self.config.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "proptest `{}`: gave up after {attempts} samples ({accepted} accepted); \
                 prop_assume! rejects too much of the input space",
                self.name
            );
            let seed = base ^ attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = StdRng::seed_from_u64(seed);
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "proptest `{}` failed at case {} (seed {seed:#018x}): {message}",
                        self.name,
                        accepted + 1
                    );
                }
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every sampled value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from every sampled value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                SampleRange::sample_from(self.clone(), rng)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                SampleRange::sample_from(self.clone(), rng)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Always produces a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A type with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.gen()
    }
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

/// The whole-domain strategy for `T` (`any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as the size argument of [`vec`].
    pub trait SizeRange {
        /// Inclusive `(min, max)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A strategy for vectors whose elements come from `element` and
    /// whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                if self.min == self.max { self.min } else { rng.gen_range(self.min..=self.max) };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Choice strategies (`prop::sample::select`).
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// See [`select`].
    pub struct Select<T: Clone>(Vec<T>);

    /// A strategy drawing uniformly from a fixed list of options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// The glob-import surface used by the test files.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Just, ProptestConfig,
        Strategy,
    };
    /// `prop::sample::select(...)`-style paths.
    pub use crate as prop;
}

/// Asserts a property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Rejects the current sample; the runner retries with a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` (the attribute is written explicitly at each fn,
/// as in upstream proptest) that samples its arguments per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                $crate::TestRunner::new(stringify!($name), __config).run(
                    |__rng: &mut $crate::TestRng| {
                        $(let $arg = $crate::Strategy::sample(&($strategy), __rng);)*
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_is_deterministic() {
        let strategy = (0u64..100, 0.0f64..1.0);
        let mut rng_a = crate::TestRng::seed_from_u64(7);
        let mut rng_b = crate::TestRng::seed_from_u64(7);
        assert_eq!(strategy.sample(&mut rng_a).0, strategy.sample(&mut rng_b).0);
    }

    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..9, b in -2.0f64..2.0, flag in any::<bool>()) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!(usize::from(flag) <= 1);
        }

        #[test]
        fn vec_lengths_respect_range(
            v in prop::collection::vec(0.0f64..1.0, 2..5),
            pick in prop::sample::select(vec![10usize, 20, 30]),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(pick % 10 == 0);
            prop_assume!(!v.is_empty());
            prop_assert_eq!(v.len(), v.len());
        }

        #[test]
        fn flat_map_links_dimensions(
            (n, items) in (1usize..4).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0u64..10, n))
            }),
        ) {
            prop_assert_eq!(items.len(), n);
        }
    }
}

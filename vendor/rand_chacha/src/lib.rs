//! Offline stand-in for `rand_chacha`: a real ChaCha8 block generator
//! implementing the vendored [`rand`] traits. Deterministic for a given
//! seed, but not bit-compatible with the upstream crate.

#![forbid(unsafe_code)]

/// Re-export of the trait home, mirroring the upstream crate layout
/// (`rand_chacha::rand_core::SeedableRng`).
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

use rand::{RngCore, SeedableRng};

/// A ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce state words.
    state: [u32; 16],
    /// Current 64-byte output block as sixteen words.
    block: [u32; 16],
    /// Next word index within `block` (16 = exhausted).
    cursor: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in
            self.block.iter_mut().zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.cursor + 2 > 16 {
            self.refill();
        }
        let lo = self.block[self.cursor] as u64;
        let hi = self.block[self.cursor + 1] as u64;
        self.cursor += 2;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        for (i, chunk) in seed.chunks(4).enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(chunk);
            state[4 + i] = u32::from_le_bytes(b);
        }
        // Counter and nonce start at zero.
        ChaCha8Rng { state, block: [0; 16], cursor: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_unit_floats() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let draws: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>()).collect();
        assert!(draws.iter().all(|&v| (0.0..1.0).contains(&v)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean = {mean}");
    }
}

//! No-op `Serialize`/`Deserialize` derives for the vendored serde
//! stand-in.
//!
//! The workspace derives these traits on many types but only a handful
//! are ever serialized (trace tasks and the JSONL header); those carry
//! hand-written impls next to their definitions. The derives here accept
//! the same attribute surface (`#[serde(...)]`) and expand to nothing,
//! so the remaining `#[derive(Serialize, Deserialize)]` sites stay
//! source-compatible without pulling in syn/quote.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for `serde_json`: a small, strict JSON
//! reader/writer over the vendored [`serde`] value model.

#![forbid(unsafe_code)]

use std::error::Error as StdError;
use std::fmt;
use std::io::Write;

pub use serde::value::{DeError, Value};
use serde::{Deserialize, Serialize};

mod parse;

/// Errors from JSON encoding, decoding, or the underlying writer.
#[derive(Debug)]
pub struct Error {
    kind: ErrorKind,
}

#[derive(Debug)]
enum ErrorKind {
    /// Malformed JSON text.
    Syntax {
        message: String,
        offset: usize,
    },
    /// Structurally valid JSON of the wrong shape.
    Shape(DeError),
    /// An I/O failure.
    Io(std::io::Error),
}

impl Error {
    /// Wraps an I/O error (mirrors `serde_json::Error::io`).
    pub fn io(e: std::io::Error) -> Self {
        Error { kind: ErrorKind::Io(e) }
    }

    pub(crate) fn syntax(message: impl Into<String>, offset: usize) -> Self {
        Error { kind: ErrorKind::Syntax { message: message.into(), offset } }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ErrorKind::Syntax { message, offset } => {
                write!(f, "invalid JSON at byte {offset}: {message}")
            }
            ErrorKind::Shape(e) => write!(f, "{e}"),
            ErrorKind::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match &self.kind {
            ErrorKind::Io(e) => Some(e),
            ErrorKind::Shape(e) => Some(e),
            ErrorKind::Syntax { .. } => None,
        }
    }
}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error { kind: ErrorKind::Shape(e) }
    }
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Infallible for the value model, but keeps the upstream signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes a value to JSON text (this stand-in does not indent).
///
/// # Errors
///
/// See [`to_string`].
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    to_string(value)
}

/// Serializes a value as compact JSON into a writer.
///
/// # Errors
///
/// Returns an I/O error if the writer fails.
pub fn to_writer<W: Write, T: Serialize>(mut writer: W, value: &T) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes()).map_err(Error::io)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns a syntax error for malformed text or a shape error when the
/// JSON does not match `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text)?;
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/inf; encode as null like upstream's lossy modes.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Ryu-style shortest form is overkill; 17 significant digits
        // round-trips every f64.
        let s = format!("{n:e}");
        if s.parse::<f64>() == Ok(n) {
            out.push_str(&s);
        } else {
            out.push_str(&format!("{n:.17e}"));
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] object literal: `json!({ "key": expr, ... })`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {{
        let mut map = ::std::collections::BTreeMap::new();
        $( map.insert($key.to_string(), $crate::Value::from($val)); )*
        $crate::Value::Object(map)
    }};
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::Value::from($val)),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = json!({ "a": 1.5, "b": "x\"y", "c": true });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn roundtrip_awkward_numbers() {
        for n in [0.0, -0.0, 1.0, -17.0, 0.1, 1e-12, 6.02e23, f64::MAX, f64::MIN_POSITIVE] {
            let text = to_string(&n).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, n, "text = {text}");
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("{}extra").is_err());
    }

    #[test]
    fn shape_errors_surface() {
        let err = from_str::<f64>("\"str\"").unwrap_err();
        assert!(err.to_string().contains("number"));
        assert!(err.source().is_some());
    }

    #[test]
    fn io_constructor() {
        let err = Error::io(std::io::Error::other("boom"));
        assert!(err.to_string().contains("boom"));
    }
}

//! A strict recursive-descent JSON parser producing [`Value`] trees.

use std::collections::BTreeMap;

use crate::{Error, Value};

/// Parses a complete JSON document (trailing garbage is an error).
pub(crate) fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::syntax("trailing characters after document", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::syntax(format!("expected `{}`", byte as char), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::syntax(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::syntax("expected a JSON value", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::syntax("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::syntax("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::syntax("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::syntax("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(Error::syntax("invalid escape", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Copy one whole UTF-8 character; the input is a &str so
                    // char boundaries are trustworthy.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::syntax("invalid UTF-8", self.pos))?;
                    let c = text.chars().next().expect("peek saw a byte");
                    if (c as u32) < 0x20 {
                        return Err(Error::syntax("unescaped control character", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let first = self.hex4()?;
        // Surrogate pairs encode astral-plane characters.
        let code = if (0xD800..0xDC00).contains(&first) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if !(0xDC00..0xE000).contains(&second) {
                    return Err(Error::syntax("invalid low surrogate", self.pos));
                }
                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
            } else {
                return Err(Error::syntax("unpaired surrogate", self.pos));
            }
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| Error::syntax("invalid code point", self.pos))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| Error::syntax("short \\u escape", self.pos))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::syntax("invalid hex digit", self.pos))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::syntax("invalid number", start))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::syntax("invalid number", start))
    }
}
